//! blot-audit acceptance tests: every rule must fire on its known-bad
//! fixture, waivers must ledger correctly, and the real workspace must
//! pass clean.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use xtask::rules::{audit_file, FileReport, Rule, RuleSet};

const ALL_RULES: RuleSet = RuleSet {
    panic: true,
    indexing: true,
    lossy_cast: true,
    errors_doc: true,
};

fn audit_fixture(name: &str, rules: RuleSet) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    audit_file(Path::new(name), &source, rules)
}

fn count(report: &FileReport, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn panic_rule_fires_on_every_macro_and_method() {
    let r = audit_fixture("panic_sites.rs", ALL_RULES);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(count(&r, Rule::Panic), 6, "violations: {:?}", r.violations);
}

#[test]
fn panic_rule_skips_test_modules() {
    let r = audit_fixture("panic_sites.rs", ALL_RULES);
    assert!(
        !r.violations
            .iter()
            .any(|v| v.message.contains("unwrap") && v.line > 19),
        "the #[cfg(test)] unwrap must not be flagged: {:?}",
        r.violations
    );
}

#[test]
fn indexing_rule_fires_on_index_and_slice_only() {
    let r = audit_fixture("indexing.rs", ALL_RULES);
    // `v[i]` and `&v[1..3]`; `.get()` and slice patterns stay quiet.
    assert_eq!(
        count(&r, Rule::Indexing),
        2,
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn lossy_cast_rule_fires_on_narrowing_only() {
    let r = audit_fixture("lossy_cast.rs", ALL_RULES);
    // `as u8` and `as u16`; the widening `as u64` stays quiet.
    assert_eq!(
        count(&r, Rule::LossyCast),
        2,
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn lossy_cast_rule_is_opt_in_per_file() {
    let rules = RuleSet {
        lossy_cast: false,
        ..ALL_RULES
    };
    let r = audit_fixture("lossy_cast.rs", rules);
    assert_eq!(count(&r, Rule::LossyCast), 0);
}

#[test]
fn errors_doc_rule_fires_on_undocumented_pub_fn_only() {
    let r = audit_fixture("errors_doc.rs", ALL_RULES);
    assert_eq!(
        count(&r, Rule::ErrorsDoc),
        1,
        "violations: {:?}",
        r.violations
    );
    assert!(r.violations[0].message.contains("undocumented"));
}

#[test]
fn error_enums_are_reported_for_crate_level_aggregation() {
    let r = audit_fixture("error_enum.rs", ALL_RULES);
    assert_eq!(r.error_enums.len(), 1);
    assert_eq!(r.error_enums[0].0, "BadError");
    assert!(r.trait_assertions.is_empty());
    assert!(r.error_impls.is_empty());
}

#[test]
fn allow_comments_waive_and_stale_allows_are_ledgered() {
    let r = audit_fixture("allowed.rs", ALL_RULES);
    assert_eq!(
        count(&r, Rule::Indexing),
        0,
        "the waived site must not be reported: {:?}",
        r.violations
    );
    let used: Vec<_> = r.allows.iter().filter(|a| a.used > 0).collect();
    let stale: Vec<_> = r.allows.iter().filter(|a| a.used == 0).collect();
    assert_eq!(used.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(used[0].rule, Rule::Indexing);
    assert_eq!(stale.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(stale[0].rule, Rule::Panic);
}

/// The acceptance gate: the real workspace passes the full audit with
/// zero violations (dep audit skipped to stay hermetic — it shells out
/// to `cargo metadata`).
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root, false).expect("lint runs");
    assert!(
        report.is_clean(),
        "workspace audit found violations:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
