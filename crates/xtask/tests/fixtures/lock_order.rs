//! Known-bad fixture for rule `lock-discipline` (lock ordering): the
//! declared order is `log → failures → units`; acquiring against it
//! while a guard is held must fire.

pub struct Store {
    log: Lock,
    failures: Lock,
    units: Lock,
}

impl Store {
    pub fn inverted_pair(&self) {
        let u = self.units.write();
        let f = self.failures.read(); // fires: failures ranks before units
        observe(&u, &f);
    }

    pub fn inverted_temporary(&self) {
        let u = self.units.write();
        self.failures.write(); // fires: temporary acquisition still inverts
        u.touch();
    }

    pub fn ordered_pair(&self) {
        let f = self.failures.read();
        let u = self.units.write(); // quiet: follows the declared order
        observe(&f, &u);
    }

    pub fn full_chain(&self) {
        let l = self.log.lock();
        let f = self.failures.read();
        let u = self.units.write(); // quiet: log → failures → units
        observe_all(&l, &f, &u);
    }
}
