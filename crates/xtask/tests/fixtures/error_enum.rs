//! Known-bad fixture: a public error enum with neither an
//! `std::error::Error` impl nor a `require_error_traits` assertion.

/// An error type missing its trait plumbing.
#[derive(Debug)]
pub enum BadError {
    /// Something broke.
    Oops,
}
