//! Known-bad fixture for rule `result-discipline`: fallible results
//! silently discarded in a panic-free crate must fire; propagated,
//! bound, best-effort and waived drops stay quiet.

pub fn fallible(flag: bool) -> Result<u32, String> {
    if flag {
        Ok(1)
    } else {
        Err("boom".to_owned())
    }
}

pub fn dropped_let(flag: bool) {
    let _ = fallible(flag); // fires: `let _ =` on a workspace fallible
}

pub fn dropped_bare(flag: bool) {
    fallible(flag); // fires: bare-statement drop
}

pub fn seeded_method_drop(stream: &mut std::net::TcpStream) {
    let _ = stream.set_read_timeout(None); // fires: std seed table
}

pub fn best_effort_is_quiet(stream: &std::net::TcpStream) {
    let _ = stream.set_nodelay(true); // quiet: best-effort courtesy
}

pub fn handled_is_quiet(flag: bool) -> Result<u32, String> {
    let v = fallible(flag)?; // quiet: propagated
    Ok(v + 1)
}

pub fn vetted_drop(flag: bool) {
    // audit: allow(result-discipline, fixture vet — the drop is deliberate)
    let _ = fallible(flag);
}
