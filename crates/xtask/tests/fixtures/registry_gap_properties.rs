//! Companion fixture to `registry_gap_scheme.rs`: property tests that
//! cover Lzf and the scheme grid, but not the new Zstd variant.

proptest! {
    #[test]
    fn lzf_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(lzf_decompress(&lzf_compress(&data)), data);
    }

    #[test]
    fn schemes_roundtrip_batches(batch in arb_batch(64)) {
        for scheme in EncodingScheme::all() {
            prop_assert_eq!(scheme.decode(&scheme.encode(&batch)), batch);
        }
    }
}
