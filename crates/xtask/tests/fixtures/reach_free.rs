//! Known-bad fixture for rule `panic-reachability`: a panic-free crate
//! (`core` in the test harness) calling across the crate boundary into
//! helpers that can panic. The lexical `panic` rule sees nothing here —
//! only the call graph does.

/// Frontier call into a helper that transitively unwraps: must fire.
pub fn entry() {
    helper_boom();
}

/// Frontier call into a vetted helper: must stay quiet.
pub fn safe_entry() {
    helper_vetted();
}

/// Call into a helper that is genuinely clean: must stay quiet.
pub fn clean_entry() {
    helper_clean();
}
