//! Known-bad fixture for the `thread-discipline` rule: ad-hoc OS-thread
//! creation outside the scan-executor pool.

pub fn spawns_directly() {
    std::thread::spawn(|| {});
}

pub fn uses_scoped_threads(items: &[u32]) -> u32 {
    std::thread::scope(|s| {
        let h = s.spawn(|| items.iter().sum());
        h.join().unwrap_or(0)
    })
}

pub fn uses_builder() {
    let _ = std::thread::Builder::new().name("rogue".into());
}

/// Sleeping and asking for parallelism are fine — only creation is
/// disciplined.
pub fn ok_thread_queries() -> usize {
    std::thread::sleep(std::time::Duration::from_millis(1));
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    /// Test code may spawn freely.
    #[test]
    fn spawning_in_tests_is_fine() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}
