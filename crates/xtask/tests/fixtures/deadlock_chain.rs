//! Known-bad fixture for rule `deadlock`: every hazard hides behind a
//! call edge, so the per-file `lock-discipline` rule cannot see it.

/// Re-acquires `log` through a call while its guard is held.
pub fn reacquire_through_call(state: &State) {
    let g = state.log.lock();
    bump_log(state);
    drop(g);
}

fn bump_log(state: &State) {
    state.log.lock().push(1);
}

/// Acquires `log` (rank 0) through a call while `units` (rank 2) is
/// held — order inversion, and a `units -> log` lock-graph edge.
pub fn inversion_through_call(state: &State) {
    let g = state.units.lock();
    bump_log(state);
    drop(g);
}

/// Acquires `units` while `log` is held: ordered correctly on its own,
/// but together with the inversion above it closes a `log <-> units`
/// cycle in the workspace lock graph.
pub fn cycle_closer(state: &State) {
    let g = state.log.lock();
    bump_units(state);
    drop(g);
}

fn bump_units(state: &State) {
    state.units.write().insert(1);
}

/// Reaches blocking I/O through a call while a guard is held.
pub fn io_through_call(state: &State) {
    let g = state.failures.lock();
    read_manifest();
    drop(g);
}

fn read_manifest() {
    let _ = std::fs::read("manifest.bin");
}

/// Submits a scan batch while a guard is held.
pub fn submit_under_guard(state: &State, pool: &Pool, jobs: Vec<Job>) {
    let g = state.failures.lock();
    pool.execute_all(jobs);
    drop(g);
}
