//! Known-bad fixture for rule `unit-flow`: additive arithmetic that
//! mixes inferred unit families must fire — including through a call
//! summary — while derived products, same-family sums and waived
//! sites stay quiet.

pub struct Params {
    pub extra_ms: f64,
    pub total_bytes: f64,
}

pub fn mixed_add(elapsed_ms: f64, total_bytes: f64) -> f64 {
    elapsed_ms + total_bytes // fires: milliseconds + bytes
}

pub fn mixed_field_sub(p: &Params, np: f64) -> f64 {
    p.extra_ms - np // fires: milliseconds - partition-count
}

pub fn mixed_compound(total_ms: f64, dataset_records: f64) -> f64 {
    let mut total_ms = total_ms;
    total_ms += dataset_records; // fires: milliseconds += record-count
    total_ms
}

/// Suffixless name, suffixless return: only the summary knows the
/// returned value is milliseconds.
pub fn grace(anchor_ms: f64) -> f64 {
    anchor_ms
}

pub fn mixed_through_call(total_bytes: f64) -> f64 {
    let w = grace(2.0);
    w + total_bytes // fires: milliseconds + bytes, via grace's summary
}

pub fn derived_products_are_quiet(ms_per_record: f64, records: f64, extra_ms: f64) -> f64 {
    // The product has a derived unit; adding milliseconds to it is the
    // cost model's own shape and must not fire.
    ms_per_record * records + extra_ms
}

pub fn same_family_is_quiet(extra_ms: f64, avg_ms: f64) -> f64 {
    let slack_ms = extra_ms + avg_ms;
    slack_ms - extra_ms
}

pub fn waived_site(elapsed_ms: f64, budget: f64) -> f64 {
    // audit: allow(unit-flow, normalised scalar — both sides are unitless here)
    elapsed_ms + budget
}
