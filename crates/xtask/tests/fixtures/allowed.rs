//! Fixture for the waiver ledger: one allow that waives a real site,
//! one stale allow that waives nothing.

pub fn sanctioned(v: &[u8]) -> u8 {
    // audit: allow(indexing, fixture exercises the waiver path)
    v[0]
}

// audit: allow(panic, stale — this waives nothing)
pub fn clean() {}
