//! The helper crate (`geo` in the test harness) for the
//! `panic-reachability` fixture: not panic-free itself, so its sites
//! seed reachability facts for callers in panic-free crates.

/// Reaches a panic two frames down.
pub fn helper_boom() {
    inner_step();
}

fn inner_step() {
    lookup().unwrap();
}

fn lookup() -> Option<u32> {
    None
}

/// The panic here is vetted at the source, so no caller sees it.
pub fn helper_vetted() {
    // audit: allow(panic-reachability, fixture vet covering the site below)
    panic!("never reached in the fixture");
}

/// No panic anywhere below.
pub fn helper_clean() {
    let _ = lookup();
}
