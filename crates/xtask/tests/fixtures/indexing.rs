//! Known-bad fixture: `expr[…]` indexing and slicing the audit must
//! flag, plus the safe patterns it must NOT flag.

pub fn pick(v: &[u8], i: usize) -> u8 {
    v[i]
}

pub fn window(v: &[u8]) -> &[u8] {
    &v[1..3]
}

pub fn fine(v: &[u8], i: usize) -> u8 {
    // `.get()` is the approved access — no violation here.
    v.get(i).copied().unwrap_or_default()
}

pub fn patterns_are_fine(v: &[u8]) -> u8 {
    // A slice pattern is not an index expression.
    let [a, _b] = v else { return 0 };
    *a
}
