//! Known-bad fixture: every `panic`-rule site the audit must flag, plus
//! test code it must NOT flag.

pub fn all_the_panics(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b: Option<u32> = None;
    let c = b.expect("value");
    if v.is_empty() {
        panic!("no data");
    }
    if *a > 10 {
        unreachable!("bounded above");
    }
    if c > 5 {
        todo!()
    }
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
