//! Known-bad fixture: narrowing `as` casts the audit must flag in
//! bit-level codec files, plus widening casts it must NOT flag.

pub fn narrow(x: u64) -> u8 {
    x as u8
}

pub fn narrow_mid(x: usize) -> u16 {
    x as u16
}

pub fn widen(x: u8) -> u64 {
    // Widening never loses bits — no violation.
    u64::from(x) + (x as u64)
}
