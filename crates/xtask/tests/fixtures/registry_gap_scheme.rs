//! Known-bad fixture for rule `registry`: a `Zstd` compression variant
//! was declared and wired into `encode`, but its decoder arm, property
//! test and fuzz targets were all forgotten.

pub enum Layout {
    Row,
    Column,
}

pub enum Compression {
    Plain,
    Lzf,
    Zstd,
}

pub struct EncodingScheme {
    pub layout: Layout,
    pub compression: Compression,
}

impl EncodingScheme {
    pub fn encode(self, data: &[u8]) -> Vec<u8> {
        let laid_out = match self.layout {
            Layout::Row => rows(data),
            Layout::Column => columns(data),
        };
        match self.compression {
            Compression::Plain => laid_out,
            Compression::Lzf => lzf_compress(&laid_out),
            Compression::Zstd => zstd_compress(&laid_out),
        }
    }

    pub fn decode(self, bytes: &[u8]) -> Vec<u8> {
        let laid_out = match self.compression {
            Compression::Plain => bytes.to_vec(),
            Compression::Lzf => lzf_decompress(bytes),
            // Zstd arm forgotten.
        };
        match self.layout {
            Layout::Row => unrows(&laid_out),
            Layout::Column => uncolumns(&laid_out),
        }
    }
}
