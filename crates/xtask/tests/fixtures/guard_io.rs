//! Known-bad fixture for rule `lock-discipline` (guard liveness):
//! `let`-bound guards held across backend I/O must fire; dropped,
//! scoped and temporary guards must stay quiet.

pub struct Store {
    units: Lock,
    backend: Backend,
    inner: Backend,
}

impl Store {
    pub fn bad_hold_across_get(&self, key: u32) -> usize {
        let guard = self.units.read();
        let bytes = self.backend.get(key); // fires: guard still live
        guard.len() + bytes.len()
    }

    pub fn bad_hold_across_fs(&self) -> usize {
        let g = self.units.lock();
        let raw = std::fs::read("unit.bin"); // fires: guard still live
        g.len() + raw.len()
    }

    pub fn bad_hold_across_scan(&self) {
        let g = self.units.write();
        run_scan(self.backend.list()); // fires twice: run_scan and .list()
        g.touch();
    }

    pub fn ok_drop_first(&self, key: u32) -> usize {
        let g = self.units.read();
        let n = g.len();
        drop(g);
        self.backend.get(key).len() + n // quiet: guard dropped
    }

    pub fn ok_temporary_guard(&self, key: u32) -> usize {
        self.units.write().insert(key); // temporary: dies with the statement
        self.inner.get(key).len() // quiet
    }

    pub fn ok_scoped_guard(&self) {
        {
            let g = self.units.read();
            g.touch();
        }
        run_scan(self.backend.list()); // quiet: guard scope closed
    }
}
