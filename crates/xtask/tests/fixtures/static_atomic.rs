//! Fixture: `static` atomics for the `metrics-discipline` rule. The
//! two ad-hoc globals must fire; instance fields, `'static` lifetimes,
//! non-atomic statics and test statics must stay quiet.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

// Violation: ad-hoc global counter invisible to the metrics registry.
static QUERY_COUNT: AtomicU64 = AtomicU64::new(0);

// Violation: still a global, even behind `pub` and a container type.
pub static SCAN_DEPTH: [AtomicUsize; 2] = [AtomicUsize::new(0), AtomicUsize::new(0)];

// Quiet: an atomic as an instance field is owned by a registered
// instrument, not a process-wide global.
pub struct Inline {
    hits: AtomicU64,
}

// Quiet: `&'static str` mentions the lifetime, not the keyword.
pub fn name() -> &'static str {
    "inline"
}

// Quiet: a non-atomic static.
static LABEL: &str = "probe";

pub fn bump() -> u64 {
    QUERY_COUNT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Quiet: test code may keep local atomics.
    static TEST_HITS: AtomicU64 = AtomicU64::new(0);

    #[test]
    fn counts() {
        TEST_HITS.fetch_add(1, Ordering::Relaxed);
        let _ = Inline {
            hits: AtomicU64::new(0),
        };
        assert_eq!(name(), "inline");
        let _ = LABEL;
        let _ = SCAN_DEPTH.len();
        let _ = bump();
    }
}
