//! Client half of the `wire-registry` fixture: handles `Ping`, `Pong`
//! and `Malformed` but not `Echo` or `Overloaded`.

pub fn run() {
    let _ = Request::Ping;
    let _ = Response::Pong;
    let _ = ErrorCode::Malformed;
}
