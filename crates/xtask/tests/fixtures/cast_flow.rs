//! Fixture for rule `cast-range`: narrowing casts whose operand
//! interval provably fits the target are auto-vetted with the interval
//! as witness; unbounded operands fire unless waived.

pub fn masked_is_proved(word: u64) -> u8 {
    (word & 0xFF) as u8 // proved: the mask pins [0, 255]
}

pub fn widening_source_is_proved(small: u8) -> u16 {
    small as u16 // proved: u8 always fits u16
}

fn tiny(flag: bool) -> u8 {
    u8::from(flag)
}

pub fn call_range_is_proved(flag: bool) -> u16 {
    let n = tiny(flag);
    n as u16 // proved: `tiny` returns a u8
}

pub fn unbounded_fires(len: u64) -> u8 {
    len as u8 // fires: [0, u64::MAX] cannot fit u8
}

pub fn vetted_cast(len: u64) -> u16 {
    // audit: allow(cast-range, fixture vet — upstream framing caps len at 512)
    len as u16
}
