//! Known-bad fixture: a fallible `pub fn` whose docs lack the required
//! errors section, next to a correctly documented one.

/// Parses a number (no errors section — must be flagged).
pub fn undocumented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_owned())
}

/// Parses a number.
///
/// # Errors
///
/// Returns a message when `s` is not a decimal integer.
pub fn documented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_owned())
}

fn private_needs_no_docs(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_owned())
}
