//! Known-bad fixture for rule `wire-registry`: `Request::Echo` has an
//! encode arm but no decode arm, `Response::Pong` is missing from
//! `encode`, and `ErrorCode::Overloaded` is missing from `from_u16`;
//! `Echo` and `Overloaded` also appear in no test.

pub enum Request {
    Ping,
    Echo(u32),
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::Ping => vec![1],
            Self::Echo(x) => vec![2, *x as u8],
        }
    }

    pub fn decode(frame: &[u8]) -> Result<Self, ()> {
        match frame {
            [1] => Ok(Self::Ping),
            _ => Err(()),
        }
    }
}

pub enum Response {
    Pong,
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        vec![1]
    }

    pub fn decode(_frame: &[u8]) -> Result<Self, ()> {
        Ok(Self::Pong)
    }
}

pub enum ErrorCode {
    Malformed = 1,
    Overloaded = 2,
}

impl ErrorCode {
    pub fn from_u16(raw: u16) -> Self {
        match raw {
            1 => Self::Malformed,
            _ => Self::Malformed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_roundtrips() {
        let bytes = Request::Ping.encode();
        let _ = Request::decode(&bytes);
        let _ = Response::Pong;
        let _ = ErrorCode::Malformed;
    }
}
