//! Property-based tests for partitioning-scheme invariants.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_geo::{Cuboid, Point, QuerySize};
use blot_index::{PartitioningScheme, SchemeSpec};
use blot_model::{Record, RecordBatch};
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = RecordBatch> {
    prop::collection::vec(
        (120.0f64..122.0, 30.0f64..32.0, 0i64..100_000, 0u32..500),
        0..400,
    )
    .prop_map(|points| {
        points
            .into_iter()
            .map(|(x, y, t, oid)| Record::new(oid, t, x, y))
            .collect()
    })
}

fn arb_spec() -> impl Strategy<Value = SchemeSpec> {
    (0u32..=3, 0u32..=4).prop_map(|(s, t)| SchemeSpec::new(4usize.pow(s), 2usize.pow(t)))
}

fn universe() -> Cuboid {
    Cuboid::new(
        Point::new(120.0, 30.0, 0.0),
        Point::new(122.0, 32.0, 100_000.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_always_tile_and_count_everything(batch in arb_batch(), spec in arb_spec()) {
        let scheme = PartitioningScheme::build(&batch, universe(), spec);
        prop_assert_eq!(scheme.len(), spec.total_partitions());
        // Volumes tile the universe.
        let total: f64 = scheme.partitions().iter().map(|p| p.range.volume()).sum();
        let uv = universe().volume();
        prop_assert!((total - uv).abs() < 1e-6 * uv);
        // Every record counted exactly once.
        let counted: usize = scheme.partitions().iter().map(|p| p.count).sum();
        prop_assert_eq!(counted, batch.len());
    }

    #[test]
    fn assignment_is_geometric(batch in arb_batch(), spec in arb_spec()) {
        let scheme = PartitioningScheme::build(&batch, universe(), spec);
        for i in 0..batch.len() {
            let p = batch.point(i);
            let id = scheme.assign_point(p.x, p.y, p.t);
            prop_assert!(scheme.partitions()[id].range.contains_point(&p));
        }
    }

    #[test]
    fn involved_lookup_equals_brute_force(
        batch in arb_batch(),
        spec in arb_spec(),
        cx in 120.0f64..122.0,
        cy in 30.0f64..32.0,
        ct in 0.0f64..100_000.0,
        w in 0.01f64..2.0,
        h in 0.01f64..2.0,
        d in 10.0f64..100_000.0,
    ) {
        let scheme = PartitioningScheme::build(&batch, universe(), spec);
        let q = Cuboid::from_centroid(Point::new(cx, cy, ct), QuerySize::new(w, h, d));
        prop_assert_eq!(scheme.involved(&q), scheme.involved_scan(&q));
    }

    #[test]
    fn involved_partitions_cover_all_matching_records(
        batch in arb_batch(),
        spec in arb_spec(),
        cx in 120.2f64..121.8,
        cy in 30.2f64..31.8,
        frac in 0.05f64..0.9,
    ) {
        // Querying through the index then filtering must find exactly the
        // records a full scan finds.
        let scheme = PartitioningScheme::build(&batch, universe(), spec);
        let q = Cuboid::from_centroid(
            Point::new(cx, cy, 50_000.0),
            QuerySize::new(2.0 * frac, 2.0 * frac, 100_000.0 * frac),
        );
        let parts = scheme.assign_batch(&batch);
        let via_index: usize = scheme
            .involved(&q)
            .into_iter()
            .map(|pid| parts[pid].count_in_range(&q))
            .sum();
        prop_assert_eq!(via_index, batch.count_in_range(&q));
    }
}
