//! Spatio-temporal partitioning for BLOT systems.
//!
//! §II-B of the paper: a BLOT system splits the dataset into partitions
//! using the core attributes — "data are first partitioned by location
//! and then further partitioned by time", with equal-sized partitions
//! (in record count) produced by a k-d tree that "recursively decomposes
//! the space by alternatively using each space dimension" (§V-A).
//!
//! This crate provides:
//!
//! * [`SchemeSpec`] — the shape of a partitioning scheme: number of
//!   spatial cells (a power of 4) × number of temporal slices per cell
//!   (a power of 2). [`SchemeSpec::paper_grid`] enumerates the 25
//!   schemes of the paper's evaluation (`4²..4⁶ × 2⁴..2⁸`).
//! * [`PartitioningScheme`] — a built scheme: the k-d tree over space,
//!   per-cell temporal quantile boundaries, and the resulting
//!   [`Partition`] list with record counts.
//! * The *partitioning index* (§II-B): [`PartitioningScheme::involved`]
//!   returns the partitions whose range intersects a query range by
//!   walking the k-d tree rather than scanning all partitions.
//!
//! Schemes are built from a *sample* of the data; boundaries are
//! quantiles, so the same scheme applied to the full dataset keeps
//! partitions near-equal in size (the paper's non-skew assumption,
//! §IV-A).
//!
//! # Example
//!
//! ```
//! use blot_geo::{Cuboid, Point, QuerySize};
//! use blot_index::{PartitioningScheme, SchemeSpec};
//! use blot_model::{Record, RecordBatch};
//!
//! let sample: RecordBatch = (0..4_000)
//!     .map(|i| Record::new(i % 8, i64::from(i), 120.0 + f64::from(i % 100) * 0.02, 31.0))
//!     .collect();
//! let universe = Cuboid::new(Point::new(120.0, 30.0, 0.0), Point::new(122.0, 32.0, 4_000.0));
//! let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 4));
//! assert_eq!(scheme.len(), 64);
//!
//! // The partitioning index: which partitions does a query touch?
//! let q = Cuboid::from_centroid(universe.centroid(), QuerySize::new(0.5, 0.5, 500.0));
//! let involved = scheme.involved(&q);
//! assert!(!involved.is_empty() && involved.len() < scheme.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod json;
mod partition;
mod scheme;

pub use grid::{skew, GridScheme};
pub use partition::Partition;
pub use scheme::{PartitioningScheme, SchemeSpec, UnknownPartition};
