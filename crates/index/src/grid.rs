//! Uniform-grid partitioning — the strawman the k-d scheme replaces.
//!
//! A regular `nx × ny × nt` grid ignores the data distribution, so on
//! hotspot-skewed tracking data the record counts per partition are
//! wildly uneven. That violates the cost model's non-skew assumption
//! (§IV-A: "we assume that all candidate partitioning schemes will
//! generate non-skewed data partitions") and makes `|D|/|P|` a bad
//! estimate of per-partition work. The grid partitioner exists to
//! *measure* that effect (see the `kd_vs_grid` ablation) and as a
//! baseline for data whose distribution really is uniform.

use blot_geo::Cuboid;
use blot_model::RecordBatch;

use crate::Partition;

/// A uniform spatio-temporal grid over a universe.
#[derive(Debug, Clone)]
pub struct GridScheme {
    universe: Cuboid,
    nx: usize,
    ny: usize,
    nt: usize,
    partitions: Vec<Partition>,
}

impl GridScheme {
    /// Builds an `nx × ny × nt` grid and counts `sample`'s records per
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn build(sample: &RecordBatch, universe: Cuboid, nx: usize, ny: usize, nt: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nt > 0,
            "grid dimensions must be positive"
        );
        let mut partitions = Vec::with_capacity(nx * ny * nt);
        for ix in 0..nx {
            for iy in 0..ny {
                for it in 0..nt {
                    let id = (ix * ny + iy) * nt + it;
                    let frac = |k: usize, n: usize| k as f64 / n as f64;
                    let min = blot_geo::Point::new(
                        universe.min().x + universe.extent(0) * frac(ix, nx),
                        universe.min().y + universe.extent(1) * frac(iy, ny),
                        universe.min().t + universe.extent(2) * frac(it, nt),
                    );
                    let max = blot_geo::Point::new(
                        universe.min().x + universe.extent(0) * frac(ix + 1, nx),
                        universe.min().y + universe.extent(1) * frac(iy + 1, ny),
                        universe.min().t + universe.extent(2) * frac(it + 1, nt),
                    );
                    partitions.push(Partition {
                        id,
                        range: Cuboid::new(min, max),
                        count: 0,
                    });
                }
            }
        }
        let mut grid = Self {
            universe,
            nx,
            ny,
            nt,
            partitions,
        };
        for i in 0..sample.len() {
            let p = sample.point(i);
            let id = grid.assign_point(p.x, p.y, p.t);
            if let Some(part) = grid.partitions.get_mut(id) {
                part.count += 1;
            }
        }
        grid
    }

    /// Number of partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the grid has no partitions (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// All partitions, ordered by id.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Maps a point to its cell id (points outside clamp to the border
    /// cells, and the universe's max faces belong to the last cells).
    #[must_use]
    pub fn assign_point(&self, x: f64, y: f64, t: f64) -> usize {
        let cell = |v: f64, lo: f64, len: f64, n: usize| -> usize {
            if len <= 0.0 {
                return 0;
            }
            let f = ((v - lo) / len * n as f64).floor();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let k = f.max(0.0) as usize;
            k.min(n - 1)
        };
        let ix = cell(x, self.universe.min().x, self.universe.extent(0), self.nx);
        let iy = cell(y, self.universe.min().y, self.universe.extent(1), self.ny);
        let it = cell(t, self.universe.min().t, self.universe.extent(2), self.nt);
        (ix * self.ny + iy) * self.nt + it
    }

    /// Ids of cells whose range intersects `query` (closed test), by
    /// direct index arithmetic — no tree needed on a regular grid.
    #[must_use]
    pub fn involved(&self, query: &Cuboid) -> Vec<usize> {
        let range = |q_lo: f64, q_hi: f64, lo: f64, len: f64, n: usize| -> (usize, usize) {
            if len <= 0.0 {
                return (0, n - 1);
            }
            let f_lo = ((q_lo - lo) / len * n as f64).floor();
            let f_hi = ((q_hi - lo) / len * n as f64).floor();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let a = f_lo.max(0.0) as usize;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let b = f_hi.max(0.0) as usize;
            (a.min(n - 1), b.min(n - 1))
        };
        if !self.universe.intersects(query) {
            return Vec::new();
        }
        let (x0, x1) = range(
            query.min().x,
            query.max().x,
            self.universe.min().x,
            self.universe.extent(0),
            self.nx,
        );
        let (y0, y1) = range(
            query.min().y,
            query.max().y,
            self.universe.min().y,
            self.universe.extent(1),
            self.ny,
        );
        let (t0, t1) = range(
            query.min().t,
            query.max().t,
            self.universe.min().t,
            self.universe.extent(2),
            self.nt,
        );
        let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1) * (t1 - t0 + 1));
        for ix in x0..=x1 {
            for iy in y0..=y1 {
                for it in t0..=t1 {
                    let id = (ix * self.ny + iy) * self.nt + it;
                    // The floor arithmetic can over-approximate on exact
                    // boundaries; confirm geometrically.
                    if self
                        .partitions
                        .get(id)
                        .is_some_and(|part| part.range.intersects(query))
                    {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Coefficient of variation (σ/μ) of per-partition record counts —
    /// the skew statistic the `kd_vs_grid` ablation reports.
    #[must_use]
    pub fn count_skew(&self) -> f64 {
        skew(self.partitions.iter().map(|p| p.count))
    }
}

/// Coefficient of variation of a count sequence (0 for empty/constant).
#[must_use]
pub fn skew(counts: impl Iterator<Item = usize> + Clone) -> f64 {
    let n = counts.clone().count();
    if n == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let mean = counts.clone().sum::<usize>() as f64 / n as f64;
    if mean == 0.0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let var = counts.map(|c| (c as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitioningScheme, SchemeSpec};
    use blot_geo::{Point, QuerySize};
    use blot_tracegen::FleetConfig;

    fn sample() -> (RecordBatch, Cuboid) {
        let config = FleetConfig::small();
        (config.generate(), config.universe())
    }

    #[test]
    fn grid_tiles_and_counts() {
        let (s, u) = sample();
        let grid = GridScheme::build(&s, u, 4, 4, 8);
        assert_eq!(grid.len(), 128);
        let vol: f64 = grid.partitions().iter().map(|p| p.range.volume()).sum();
        assert!((vol - u.volume()).abs() < 1e-6 * u.volume());
        let total: usize = grid.partitions().iter().map(|p| p.count).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn involved_matches_geometry() {
        let (s, u) = sample();
        let grid = GridScheme::build(&s, u, 5, 3, 7);
        for (i, qs) in [
            QuerySize::new(0.1, 0.1, 500.0),
            QuerySize::new(1.0, 0.8, 5_000.0),
            QuerySize::new(2.0, 2.0, u.extent(2)),
        ]
        .iter()
        .enumerate()
        {
            let q = Cuboid::from_centroid(
                Point::new(
                    u.centroid().x + 0.07 * i as f64,
                    u.centroid().y - 0.03 * i as f64,
                    u.centroid().t,
                ),
                *qs,
            );
            let mut brute: Vec<usize> = grid
                .partitions()
                .iter()
                .filter(|p| p.range.intersects(&q))
                .map(|p| p.id)
                .collect();
            brute.sort_unstable();
            let mut fast = grid.involved(&q);
            fast.sort_unstable();
            assert_eq!(fast, brute, "query {i}");
        }
    }

    #[test]
    fn grid_is_far_more_skewed_than_kd_on_hotspot_data() {
        let (s, u) = sample();
        let grid = GridScheme::build(&s, u, 8, 8, 16);
        let kd = PartitioningScheme::build(&s, u, SchemeSpec::new(64, 16));
        let kd_skew = skew(kd.partitions().iter().map(|p| p.count));
        assert!(
            grid.count_skew() > 4.0 * kd_skew,
            "grid skew {:.2} should dwarf kd skew {kd_skew:.2}",
            grid.count_skew()
        );
    }

    #[test]
    fn assign_point_clamps_out_of_range() {
        let (s, u) = sample();
        let grid = GridScheme::build(&s, u, 4, 4, 4);
        assert_eq!(
            grid.assign_point(u.min().x - 1.0, u.min().y - 1.0, u.min().t - 1.0),
            0
        );
        let last = grid.assign_point(u.max().x + 1.0, u.max().y + 1.0, u.max().t + 1.0);
        assert_eq!(last, grid.len() - 1);
    }
}
