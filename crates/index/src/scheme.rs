use blot_geo::Cuboid;
use blot_model::RecordBatch;
use std::fmt;

use crate::Partition;

/// A partition id outside the scheme's `0..len` range was passed to a
/// count-maintenance call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownPartition {
    /// The offending partition id.
    pub id: usize,
    /// Number of partitions in the scheme.
    pub len: usize,
}

impl fmt::Display for UnknownPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition id {} out of range for scheme with {} partitions",
            self.id, self.len
        )
    }
}

impl std::error::Error for UnknownPartition {}

/// The shape of a partitioning scheme: how many spatial cells and how
/// many temporal slices per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeSpec {
    /// Number of spatial k-d cells; must be a power of 4 so the k-d tree
    /// alternates x/y splits evenly (4² … 4⁶ in the paper).
    pub spatial: usize,
    /// Number of temporal slices per spatial cell (2⁴ … 2⁸ in the
    /// paper); must be a power of 2.
    pub temporal: usize,
}

impl SchemeSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics unless `spatial` is a power of 4 and `temporal` a power of
    /// 2, both non-zero.
    #[must_use]
    pub fn new(spatial: usize, temporal: usize) -> Self {
        assert!(
            spatial.is_power_of_two() && spatial.trailing_zeros().is_multiple_of(2) && spatial > 0,
            "spatial cell count must be a power of 4, got {spatial}"
        );
        assert!(
            temporal.is_power_of_two(),
            "temporal slice count must be a power of 2"
        );
        Self { spatial, temporal }
    }

    /// Total partitions `spatial × temporal`.
    #[must_use]
    pub fn total_partitions(&self) -> usize {
        self.spatial * self.temporal
    }

    /// The paper's 25 candidate schemes: spatial `4²..4⁶` × temporal
    /// `2⁴..2⁸` (§V-A).
    #[must_use]
    pub fn paper_grid() -> Vec<Self> {
        let mut v = Vec::with_capacity(25);
        for se in 2..=6u32 {
            for te in 4..=8u32 {
                v.push(Self::new(4usize.pow(se), 2usize.pow(te)));
            }
        }
        v
    }

    /// A small grid for tests and examples (spatial `4¹..4²` × temporal
    /// `2¹..2²`).
    #[must_use]
    pub fn small_grid() -> Vec<Self> {
        vec![
            Self::new(4, 2),
            Self::new(4, 4),
            Self::new(16, 2),
            Self::new(16, 4),
        ]
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}xT{}", self.spatial, self.temporal)
    }
}

impl std::str::FromStr for SchemeSpec {
    type Err = String;

    /// Parses the [`Display`](fmt::Display) form, e.g. `S16xT8`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix('S')
            .ok_or_else(|| format!("expected S<n>xT<m>, got `{s}`"))?;
        let (sp, tp) = rest
            .split_once("xT")
            .ok_or_else(|| format!("expected S<n>xT<m>, got `{s}`"))?;
        let spatial: usize = sp
            .parse()
            .map_err(|_| format!("bad spatial count in `{s}`"))?;
        let temporal: usize = tp
            .parse()
            .map_err(|_| format!("bad temporal count in `{s}`"))?;
        if !spatial.is_power_of_two() || !spatial.trailing_zeros().is_multiple_of(2) || spatial == 0
        {
            return Err(format!("spatial count must be a power of 4, got {spatial}"));
        }
        if !temporal.is_power_of_two() {
            return Err(format!(
                "temporal count must be a power of 2, got {temporal}"
            ));
        }
        Ok(Self::new(spatial, temporal))
    }
}

/// Node of the spatial k-d tree. Leaves index into the cell table.
#[derive(Debug, Clone)]
pub(crate) enum KdNode {
    Leaf {
        cell: usize,
    },
    Split {
        /// 0 = x (longitude), 1 = y (latitude).
        axis: usize,
        /// Records with `coord < value` go low, `coord ≥ value` go high.
        value: f64,
        low: Box<KdNode>,
        high: Box<KdNode>,
    },
}

/// A built partitioning scheme `P` (Definition 1): an equal-count k-d
/// decomposition of space, refined by per-cell temporal quantiles, plus
/// the partitioning index over the resulting partitions.
#[derive(Debug, Clone)]
pub struct PartitioningScheme {
    pub(crate) spec: SchemeSpec,
    pub(crate) universe: Cuboid,
    pub(crate) root: KdNode,
    /// Spatial footprint of each cell (time axis spans the universe).
    pub(crate) cells: Vec<Cuboid>,
    /// Per cell: `temporal + 1` boundaries covering the universe's time
    /// extent. Slice `k` of cell `c` is `[bounds[c][k], bounds[c][k+1])`
    /// (last slice closed above).
    pub(crate) time_bounds: Vec<Vec<f64>>,
    pub(crate) partitions: Vec<Partition>,
}

impl PartitioningScheme {
    /// Builds a scheme from a data sample.
    ///
    /// Splits space by k-d medians of the sample (equal record counts per
    /// cell), then each cell's records by time quantiles (equal counts
    /// per slice). Cells and slices always tile the full `universe`, so
    /// any future record falls into exactly one partition.
    ///
    /// # Panics
    ///
    /// Panics if `universe` does not contain the sample's bounding box.
    #[must_use]
    pub fn build(sample: &RecordBatch, universe: Cuboid, spec: SchemeSpec) -> Self {
        if let Some(bb) = sample.bounding_box() {
            assert!(
                universe.contains_cuboid(&bb),
                "universe must contain the sample (sample bb {bb:?})"
            );
        }
        // Depth of the k-d tree: spatial = 4^k means 2k alternating splits.
        let depth = spec.spatial.trailing_zeros() as usize;
        let mut points: Vec<(f64, f64, f64)> = (0..sample.len())
            .map(|i| {
                let p = sample.point(i);
                (p.x, p.y, p.t)
            })
            .collect();
        let mut cells = Vec::with_capacity(spec.spatial);
        let mut cell_points: Vec<Vec<f64>> = Vec::with_capacity(spec.spatial);
        let footprint = universe; // cells inherit the universe time span
        let root = Self::build_kd(
            &mut points,
            footprint,
            0,
            depth,
            &mut cells,
            &mut cell_points,
        );

        // Temporal quantile boundaries per cell.
        let t_lo = universe.min().t;
        let t_hi = universe.max().t;
        let m = spec.temporal;
        let mut time_bounds = Vec::with_capacity(cells.len());
        for times in &mut cell_points {
            times.sort_by(f64::total_cmp);
            let mut bounds = Vec::with_capacity(m + 1);
            bounds.push(t_lo);
            for k in 1..m {
                let quantile = (times.len() * k / m).min(times.len().saturating_sub(1));
                let b = times.get(quantile).copied().unwrap_or_else(|| {
                    // Empty cell: fall back to uniform slicing.
                    t_lo + (t_hi - t_lo) * (k as f64) / (m as f64)
                });
                // Boundaries must be non-decreasing and inside the span
                // (`bounds` always starts with `t_lo`).
                let prev = bounds.last().copied().unwrap_or(t_lo);
                bounds.push(b.clamp(prev, t_hi));
            }
            bounds.push(t_hi);
            time_bounds.push(bounds);
        }

        let mut scheme = Self {
            spec,
            universe,
            root,
            cells,
            time_bounds,
            partitions: Vec::new(),
        };
        scheme.rebuild_partitions(sample);
        scheme
    }

    /// (Re)computes the partition table and per-partition counts by
    /// assigning every sample record.
    fn rebuild_partitions(&mut self, sample: &RecordBatch) {
        let m = self.spec.temporal;
        let mut partitions = Vec::with_capacity(self.cells.len() * m);
        for (c, (cell, bounds)) in self.cells.iter().zip(&self.time_bounds).enumerate() {
            // `bounds` has m + 1 entries, so `windows(2)` yields exactly
            // the m consecutive (lower, upper) slice pairs.
            for (k, pair) in bounds.windows(2).enumerate() {
                let &[lo, hi] = pair else { continue };
                let min = cell.min().with_axis(2, lo);
                let max = cell.max().with_axis(2, hi);
                partitions.push(Partition {
                    id: c * m + k,
                    range: Cuboid::new(min, max),
                    count: 0,
                });
            }
        }
        for i in 0..sample.len() {
            let p = sample.point(i);
            let id = self.assign_point(p.x, p.y, p.t);
            if let Some(part) = partitions.get_mut(id) {
                part.count += 1;
            }
        }
        self.partitions = partitions;
    }

    #[allow(clippy::too_many_arguments)]
    fn build_kd(
        points: &mut [(f64, f64, f64)],
        footprint: Cuboid,
        depth: usize,
        max_depth: usize,
        cells: &mut Vec<Cuboid>,
        cell_points: &mut Vec<Vec<f64>>,
    ) -> KdNode {
        if depth == max_depth {
            let cell = cells.len();
            cells.push(footprint);
            cell_points.push(points.iter().map(|p| p.2).collect());
            return KdNode::Leaf { cell };
        }
        let axis = depth % 2;
        let key = |p: &(f64, f64, f64)| if axis == 0 { p.0 } else { p.1 };
        let value = if points.is_empty() {
            // No sample here: split geometrically.
            (footprint.min().axis(axis) + footprint.max().axis(axis)) / 2.0
        } else {
            let mid = (points.len() / 2).min(points.len() - 1);
            points.select_nth_unstable_by(mid, |a, b| key(a).total_cmp(&key(b)));
            points
                .get(mid)
                .map(key)
                .unwrap_or_else(|| (footprint.min().axis(axis) + footprint.max().axis(axis)) / 2.0)
                .clamp(footprint.min().axis(axis), footprint.max().axis(axis))
        };
        let (low_box, high_box) = footprint.split_at(axis, value);
        // Geometric assignment: coord < value goes low.
        let split_idx = itertools_partition(points, |p| key(p) < value);
        let (low_pts, high_pts) = points.split_at_mut(split_idx);
        let low = Self::build_kd(low_pts, low_box, depth + 1, max_depth, cells, cell_points);
        let high = Self::build_kd(high_pts, high_box, depth + 1, max_depth, cells, cell_points);
        KdNode::Split {
            axis,
            value,
            low: Box::new(low),
            high: Box::new(high),
        }
    }

    /// The scheme's shape.
    #[must_use]
    pub fn spec(&self) -> SchemeSpec {
        self.spec
    }

    /// The universe the scheme tiles.
    #[must_use]
    pub fn universe(&self) -> Cuboid {
        self.universe
    }

    /// All partitions, ordered by id.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of partitions `|P|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the scheme has no partitions (never true for built
    /// schemes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The spatial cells of the k-d decomposition.
    #[must_use]
    pub fn cells(&self) -> &[Cuboid] {
        &self.cells
    }

    /// Assigns a point to its unique partition id.
    ///
    /// Containment is half-open on interior boundaries (low side wins …
    /// strictly: `coord < split` goes low) and closed on the universe
    /// boundary, so every point of the universe maps to exactly one
    /// partition. Points outside the universe clamp to the nearest
    /// boundary partition.
    #[must_use]
    pub fn assign_point(&self, x: f64, y: f64, t: f64) -> usize {
        let mut node = &self.root;
        let cell = loop {
            match node {
                KdNode::Leaf { cell } => break *cell,
                KdNode::Split {
                    axis,
                    value,
                    low,
                    high,
                } => {
                    let coord = if *axis == 0 { x } else { y };
                    node = if coord < *value { low } else { high };
                }
            }
        };
        let m = self.spec.temporal;
        let Some(bounds) = self.time_bounds.get(cell) else {
            // Leaves and `time_bounds` are built together; an unknown
            // cell (impossible for built schemes) maps to slice 0.
            return cell * m;
        };
        // Find the slice with bounds[k] <= t < bounds[k+1]; clamp ends.
        let interior = bounds.get(1..m).unwrap_or_default();
        let mut k = match interior.binary_search_by(|b| b.total_cmp(&t)) {
            // t equals an interior boundary: boundary belongs to the
            // upper slice.
            Ok(i) => i + 1,
            Err(i) => i,
        };
        k = k.min(m - 1);
        cell * m + k
    }

    /// Assigns every record of `batch` to its partition, returning one
    /// sub-batch per partition id (the physical build step of a replica).
    #[must_use]
    pub fn assign_batch(&self, batch: &RecordBatch) -> Vec<RecordBatch> {
        let mut out = vec![RecordBatch::new(); self.len()];
        for i in 0..batch.len() {
            let p = batch.point(i);
            let id = self.assign_point(p.x, p.y, p.t);
            if let Some(part) = out.get_mut(id) {
                part.push(batch.get(i));
            }
        }
        out
    }

    /// Records that `n` new records were appended to partition `id`
    /// (keeps the per-partition counts — and any skew statistics derived
    /// from them — truthful under continuous ingest).
    ///
    /// # Errors
    ///
    /// [`UnknownPartition`] if `id` is out of range for this scheme.
    pub fn note_insertions(&mut self, id: usize, n: usize) -> Result<(), UnknownPartition> {
        let len = self.partitions.len();
        let part = self
            .partitions
            .get_mut(id)
            .ok_or(UnknownPartition { id, len })?;
        part.count += n;
        Ok(())
    }

    /// The partitioning-index lookup (§II-B): ids of the partitions whose
    /// range intersects `query`, found by walking the k-d tree and
    /// binary-searching each reached cell's time boundaries.
    #[must_use]
    pub fn involved(&self, query: &Cuboid) -> Vec<usize> {
        let mut cells = Vec::new();
        collect_cells(&self.root, query, &mut cells);
        let m = self.spec.temporal;
        let (t0, t1) = (query.min().t, query.max().t);
        let mut out = Vec::new();
        for cell in cells {
            if !self
                .cells
                .get(cell)
                .is_some_and(|range| range.intersects(query))
            {
                continue; // tree walk prunes by x/y only; confirm in 3-D
            }
            let Some(bounds) = self.time_bounds.get(cell) else {
                continue;
            };
            // First slice whose upper bound reaches t0, last whose lower
            // bound is ≤ t1 (closed intersection test, like Range ∩).
            let mut k = 0;
            while k < m && bounds.get(k + 1).is_some_and(|&b| b < t0) {
                k += 1;
            }
            while k < m && bounds.get(k).is_some_and(|&b| b <= t1) {
                out.push(cell * m + k);
                k += 1;
            }
        }
        out.sort_unstable();
        out
    }

    /// Brute-force involvement scan — the reference implementation used
    /// by tests and by the cost model when it needs every partition
    /// anyway.
    #[must_use]
    pub fn involved_scan(&self, query: &Cuboid) -> Vec<usize> {
        self.partitions
            .iter()
            .filter(|p| p.range.intersects(query))
            .map(|p| p.id)
            .collect()
    }
}

/// Stable partition of a slice by predicate; returns the split index.
fn itertools_partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    // In-place two-pointer partition (order within halves irrelevant for
    // k-d construction).
    let mut i = 0;
    let mut j = slice.len();
    while i < j {
        if slice.get(i).is_some_and(&pred) {
            i += 1;
        } else {
            j -= 1;
            slice.swap(i, j);
        }
    }
    i
}

fn collect_cells(node: &KdNode, query: &Cuboid, out: &mut Vec<usize>) {
    match node {
        KdNode::Leaf { cell } => out.push(*cell),
        KdNode::Split {
            axis,
            value,
            low,
            high,
        } => {
            // Closed intersection: a query touching the split plane
            // reaches both sides.
            if query.min().axis(*axis) < *value {
                collect_cells(low, query, out);
            }
            if query.max().axis(*axis) >= *value {
                collect_cells(high, query, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_geo::{Point, QuerySize};
    use blot_tracegen::FleetConfig;

    fn sample_and_universe() -> (RecordBatch, Cuboid) {
        let config = FleetConfig::small();
        (config.generate(), config.universe())
    }

    #[test]
    fn paper_grid_has_25_schemes() {
        let grid = SchemeSpec::paper_grid();
        assert_eq!(grid.len(), 25);
        assert_eq!(grid[0], SchemeSpec::new(16, 16));
        assert_eq!(grid[24], SchemeSpec::new(4096, 256));
        assert_eq!(grid[24].total_partitions(), 1_048_576);
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn non_power_of_four_spatial_panics() {
        let _ = SchemeSpec::new(8, 2);
    }

    #[test]
    fn partitions_tile_the_universe() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 4));
        assert_eq!(scheme.len(), 64);
        let total_volume: f64 = scheme.partitions().iter().map(|p| p.range.volume()).sum();
        assert!(
            (total_volume - universe.volume()).abs() < 1e-6 * universe.volume(),
            "partitions must tile the universe exactly"
        );
        for p in scheme.partitions() {
            assert!(universe.contains_cuboid(&p.range));
        }
    }

    #[test]
    fn every_point_assigned_exactly_once() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 4));
        let total: usize = scheme.partitions().iter().map(|p| p.count).sum();
        assert_eq!(total, sample.len());
        // Geometric double-check on a sub-sample: the assigned partition
        // must actually contain the point; no other partition may
        // (half-open interior boundaries).
        for i in (0..sample.len()).step_by(97) {
            let p = sample.point(i);
            let id = scheme.assign_point(p.x, p.y, p.t);
            assert!(
                scheme.partitions()[id].range.contains_point(&p),
                "assigned partition must contain its point"
            );
        }
    }

    #[test]
    fn partitions_are_near_equal_count() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 8));
        let expected = sample.len() / scheme.len();
        for p in scheme.partitions() {
            assert!(
                p.count <= expected * 2 + 8 && p.count + expected / 2 >= expected / 2,
                "partition {} holds {} records, expected ≈ {expected}",
                p.id,
                p.count
            );
        }
        // Stronger aggregate check: standard deviation well under the mean.
        let mean = expected as f64;
        let var: f64 = scheme
            .partitions()
            .iter()
            .map(|p| (p.count as f64 - mean).powi(2))
            .sum::<f64>()
            / scheme.len() as f64;
        assert!(var.sqrt() < mean * 0.5, "std {} vs mean {mean}", var.sqrt());
    }

    #[test]
    fn involved_matches_brute_force() {
        let (sample, universe) = sample_and_universe();
        for spec in SchemeSpec::small_grid() {
            let scheme = PartitioningScheme::build(&sample, universe, spec);
            for (i, qs) in [
                QuerySize::new(0.1, 0.1, 3000.0),
                QuerySize::new(1.0, 1.0, 8000.0),
                QuerySize::new(2.0, 2.0, 20000.0),
            ]
            .iter()
            .enumerate()
            {
                let c = universe.centroid();
                let shift = 0.1 * (i as f64);
                let q = Cuboid::from_centroid(Point::new(c.x + shift, c.y - shift, c.t / 2.0), *qs);
                let fast = scheme.involved(&q);
                let slow = scheme.involved_scan(&q);
                assert_eq!(fast, slow, "spec {spec} query {i}");
            }
        }
    }

    #[test]
    fn whole_universe_query_involves_everything() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(4, 4));
        assert_eq!(scheme.involved(&universe).len(), scheme.len());
    }

    #[test]
    fn tiny_query_involves_few_partitions() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(64, 16));
        let q = Cuboid::from_centroid(
            Point::new(121.0, 31.0, 1000.0),
            QuerySize::new(0.01, 0.01, 100.0),
        );
        let inv = scheme.involved(&q);
        assert!(!inv.is_empty());
        assert!(inv.len() <= 8, "tiny query hit {} partitions", inv.len());
    }

    #[test]
    fn assign_batch_partitions_all_records() {
        let (sample, universe) = sample_and_universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 4));
        let parts = scheme.assign_batch(&sample);
        assert_eq!(parts.len(), scheme.len());
        let total: usize = parts.iter().map(RecordBatch::len).sum();
        assert_eq!(total, sample.len());
        for (id, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), scheme.partitions()[id].count);
            for i in 0..part.len() {
                assert!(scheme.partitions()[id].range.contains_point(&part.point(i)));
            }
        }
    }

    #[test]
    fn empty_sample_builds_uniform_scheme() {
        let universe = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(8.0, 8.0, 8.0));
        let scheme =
            PartitioningScheme::build(&RecordBatch::new(), universe, SchemeSpec::new(4, 2));
        assert_eq!(scheme.len(), 8);
        // Geometric fallback: equal-volume cells.
        for p in scheme.partitions() {
            assert!((p.range.volume() - universe.volume() / 8.0).abs() < 1e-9);
        }
    }
}
