//! JSON round-trips for partitioning schemes (manifest persistence).
//!
//! A [`PartitioningScheme`] serialises losslessly: spec, universe, the
//! k-d tree, cell footprints, per-cell time boundaries and the
//! partition table. Reconstruction re-validates every structural
//! invariant (cell counts, boundary lengths, partition ids) so corrupt
//! manifests surface as [`JsonError`]s rather than panics deep inside
//! query routing.

use crate::scheme::KdNode;
use crate::{Partition, PartitioningScheme, SchemeSpec};
use blot_geo::Cuboid;
use blot_json::{FromJson, Json, JsonError, ToJson};

impl ToJson for SchemeSpec {
    /// The `Display` form, e.g. `"S16xT8"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for SchemeSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .ok_or_else(|| JsonError::shape("expected a scheme-spec string"))?
            .parse()
            .map_err(JsonError::shape)
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("range", self.range.to_json()),
            ("count", self.count.to_json()),
        ])
    }
}

impl FromJson for Partition {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Partition {
            id: usize::from_json(value.field("id")?)?,
            range: Cuboid::from_json(value.field("range")?)?,
            count: usize::from_json(value.field("count")?)?,
        })
    }
}

impl ToJson for KdNode {
    fn to_json(&self) -> Json {
        match self {
            KdNode::Leaf { cell } => Json::obj([("cell", cell.to_json())]),
            KdNode::Split {
                axis,
                value,
                low,
                high,
            } => Json::obj([
                ("axis", axis.to_json()),
                ("value", Json::Num(*value)),
                ("low", low.to_json()),
                ("high", high.to_json()),
            ]),
        }
    }
}

impl FromJson for KdNode {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(cell) = value.get("cell") {
            return Ok(KdNode::Leaf {
                cell: usize::from_json(cell)?,
            });
        }
        let axis = usize::from_json(value.field("axis")?)?;
        if axis > 1 {
            return Err(JsonError::shape(format!(
                "k-d split axis {axis} not in 0..2"
            )));
        }
        Ok(KdNode::Split {
            axis,
            value: f64::from_json(value.field("value")?)?,
            low: Box::new(KdNode::from_json(value.field("low")?)?),
            high: Box::new(KdNode::from_json(value.field("high")?)?),
        })
    }
}

impl ToJson for PartitioningScheme {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("universe", self.universe.to_json()),
            ("root", self.root.to_json()),
            ("cells", self.cells.to_json()),
            (
                "time_bounds",
                Json::Arr(self.time_bounds.iter().map(|b| b.to_json()).collect()),
            ),
            ("partitions", self.partitions.to_json()),
        ])
    }
}

impl FromJson for PartitioningScheme {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let spec = SchemeSpec::from_json(value.field("spec")?)?;
        let universe = Cuboid::from_json(value.field("universe")?)?;
        let root = KdNode::from_json(value.field("root")?)?;
        let cells = Vec::<Cuboid>::from_json(value.field("cells")?)?;
        let time_bounds: Vec<Vec<f64>> = value
            .field("time_bounds")?
            .as_array()
            .ok_or_else(|| JsonError::shape("time_bounds must be an array"))?
            .iter()
            .map(Vec::<f64>::from_json)
            .collect::<Result<_, _>>()?;
        let partitions = Vec::<Partition>::from_json(value.field("partitions")?)?;

        // Structural invariants the query paths rely on.
        if cells.len() != spec.spatial {
            return Err(JsonError::shape(format!(
                "expected {} cells, found {}",
                spec.spatial,
                cells.len()
            )));
        }
        if time_bounds.len() != cells.len() {
            return Err(JsonError::shape("one time-bound row per cell required"));
        }
        if time_bounds.iter().any(|b| b.len() != spec.temporal + 1) {
            return Err(JsonError::shape(format!(
                "each cell needs {} time boundaries",
                spec.temporal + 1
            )));
        }
        let expected = spec.total_partitions();
        if partitions.len() != expected {
            return Err(JsonError::shape(format!(
                "expected {expected} partitions, found {}",
                partitions.len()
            )));
        }
        if partitions.iter().enumerate().any(|(i, p)| p.id != i) {
            return Err(JsonError::shape("partition ids must be dense 0..n"));
        }
        let mut leaf_cells = Vec::new();
        collect_leaves(&root, &mut leaf_cells);
        leaf_cells.sort_unstable();
        if leaf_cells.len() != cells.len() || leaf_cells.iter().enumerate().any(|(i, &c)| c != i) {
            return Err(JsonError::shape(
                "k-d leaves must reference each cell exactly once",
            ));
        }
        Ok(PartitioningScheme {
            spec,
            universe,
            root,
            cells,
            time_bounds,
            partitions,
        })
    }
}

fn collect_leaves(node: &KdNode, out: &mut Vec<usize>) {
    match node {
        KdNode::Leaf { cell } => out.push(*cell),
        KdNode::Split { low, high, .. } => {
            collect_leaves(low, out);
            collect_leaves(high, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_tracegen::FleetConfig;

    #[test]
    fn scheme_round_trips_losslessly() {
        let config = FleetConfig::small();
        let sample = config.generate();
        let universe = config.universe();
        let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(16, 4));
        let text = scheme.to_json().pretty();
        let back =
            PartitioningScheme::from_json(&Json::parse(&text).expect("parse")).expect("shape");
        assert_eq!(back.spec(), scheme.spec());
        assert_eq!(back.universe(), scheme.universe());
        assert_eq!(back.partitions(), scheme.partitions());
        // Routing behaviour must be identical, not just field equality.
        for i in (0..sample.len()).step_by(31) {
            let p = sample.point(i);
            assert_eq!(
                back.assign_point(p.x, p.y, p.t),
                scheme.assign_point(p.x, p.y, p.t)
            );
        }
    }

    #[test]
    fn truncated_scheme_is_rejected() {
        let config = FleetConfig::small();
        let scheme =
            PartitioningScheme::build(&config.generate(), config.universe(), SchemeSpec::new(4, 2));
        let mut j = scheme.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "partitions");
        }
        assert!(PartitioningScheme::from_json(&j).is_err());
    }

    #[test]
    fn spec_string_form() {
        let spec = SchemeSpec::new(64, 8);
        assert_eq!(spec.to_json(), Json::Str("S64xT8".into()));
        assert_eq!(SchemeSpec::from_json(&spec.to_json()).expect("parse"), spec);
        assert!(SchemeSpec::from_json(&Json::Str("S5xT3".into())).is_err());
    }
}
