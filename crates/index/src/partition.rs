use blot_geo::Cuboid;

/// One space-time partition of a partitioning scheme (Definitions 1–2 of
/// the paper): its id, spatio-temporal range, and the number of sample
/// records that fell into it at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Dense id in `0..scheme.len()`; equals
    /// `cell_index * temporal_partitions + time_slice`.
    pub id: usize,
    /// Spatio-temporal range `Range(p)`.
    pub range: Cuboid,
    /// Number of build-sample records contained (used to check the
    /// non-skew assumption and to estimate `|D(p)|` for the full data).
    pub count: usize,
}
