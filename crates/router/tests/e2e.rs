//! Loopback scatter-gather end-to-end tests: real `blot-server` shards
//! on port 0, a real coordinator over real TCP, asserting
//!
//! * merged results are **bit-identical** to a single store holding
//!   the whole fleet,
//! * axis-cut maps prune fan-out without losing records,
//! * a shard killed mid-query yields a structured, retry-hinted error
//!   (never a hang, never silent partial results),
//! * an overloaded shard's shed propagates as the same structured
//!   error, and the query succeeds once the shard recovers,
//! * the coordinator's `Stats` view aggregates every shard.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_precision_loss
)]

use std::io::Read;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blot_core::prelude::*;
use blot_router::{
    Coordinator, PoolConfig, RouterConfig, RouterError, RouterService, ShardMap, ShardSpec,
};
use blot_server::client::Client;
use blot_server::server::{Server, ServerConfig};
use blot_server::wire::ErrorCode;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;

type TestStore = BlotStore<MemBackend>;

fn fleet() -> (RecordBatch, Cuboid) {
    let mut config = FleetConfig::small();
    config.num_taxis = 40;
    config.records_per_taxi = 120;
    (config.generate(), config.universe())
}

/// A store over `data` with the same two-replica layout the server
/// e2e suite uses (per-shard replica selection stays local to each
/// shard's own store).
fn build_store(data: &RecordBatch, universe: Cuboid) -> TestStore {
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, data, 23);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    store
}

/// Partitions `data` by `spec` (addresses are placeholders: placement
/// depends only on the spec).
fn partition(spec: &ShardSpec, data: &RecordBatch) -> Vec<RecordBatch> {
    let n = spec.shard_count();
    let placeholder: Vec<String> = (0..n).map(|i| format!("placeholder:{i}")).collect();
    let map = ShardMap::new(0, spec.clone(), placeholder).unwrap();
    let mut shards: Vec<RecordBatch> = (0..n).map(|_| RecordBatch::new()).collect();
    for r in data.iter() {
        shards[map.shard_of(&r) as usize].push(r);
    }
    shards
}

/// Starts one real server per shard slice and returns the servers plus
/// the live shard map binding their addresses.
fn start_shards(spec: ShardSpec, data: &RecordBatch, universe: Cuboid) -> (Vec<Server>, ShardMap) {
    let slices = partition(&spec, data);
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for slice in &slices {
        assert!(
            !slice.is_empty(),
            "test topology must give every shard records"
        );
        let store = Arc::new(build_store(slice, universe));
        let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let map = ShardMap::new(1, spec, addrs).unwrap();
    (servers, map)
}

fn probe_queries(universe: &Cuboid, n: usize) -> Vec<Cuboid> {
    (0..n)
        .map(|k| {
            let f = 1.5 + k as f64;
            Cuboid::from_centroid(
                universe.centroid(),
                QuerySize::new(
                    universe.extent(0) / f,
                    universe.extent(1) / f,
                    universe.extent(2) / f,
                ),
            )
        })
        .collect()
}

fn sorted(records: &RecordBatch) -> RecordBatch {
    let mut out = records.clone();
    out.sort_by_oid_time();
    out
}

#[test]
fn four_shard_scatter_gather_is_bit_identical_to_single_store() {
    let (data, universe) = fleet();
    let single = build_store(&data, universe);
    let (servers, map) = start_shards(ShardSpec::OidHash { shards: 4 }, &data, universe);
    let coordinator = Coordinator::new(map, RouterConfig::default()).unwrap();

    for q in probe_queries(&universe, 10) {
        let dist = coordinator.query(&q).unwrap();
        let local = single.query(&q).unwrap();
        assert_eq!(
            dist.records,
            sorted(&local.records),
            "merged records must be bit-identical to the single store"
        );
        // Belt and braces: the raw-data oracle agrees too.
        assert_eq!(dist.records, sorted(&data.filter_range(&q)));
        assert_eq!(dist.fanout, 4, "oid-hash queries touch every shard");
        assert_eq!(dist.shards.len(), 4);
        let leg_sum: usize = dist.shards.iter().map(|l| l.records).sum();
        assert_eq!(leg_sum, dist.records.len());
    }

    // The scatter-gather span tree landed in the coordinator's own
    // recorder: one router.query root per query, with per-shard legs.
    if blot_obs::enabled() {
        let spans = coordinator.recorder().snapshot();
        assert!(spans.iter().any(|s| s.name.as_str() == "router.query"));
        assert!(spans.iter().any(|s| s.name.as_str() == "router.shard"));
    }

    for server in servers {
        let report = server.shutdown(Duration::from_secs(10));
        assert!(report.threads_joined);
    }
}

#[test]
fn batched_queries_match_single_store_too() {
    let (data, universe) = fleet();
    let single = build_store(&data, universe);
    let (servers, map) = start_shards(ShardSpec::OidHash { shards: 4 }, &data, universe);
    let coordinator = Coordinator::new(map, RouterConfig::default()).unwrap();

    let queries: Vec<(Cuboid, _)> = probe_queries(&universe, 6)
        .into_iter()
        .map(|q| (q, None))
        .collect();
    let results = coordinator.query_batch_traced(&queries);
    assert_eq!(results.len(), 6);
    for ((q, _), result) in queries.iter().zip(results) {
        let dist = result.unwrap();
        let local = single.query(q).unwrap();
        assert_eq!(dist.records, sorted(&local.records));
    }
    for server in servers {
        let _ = server.shutdown(Duration::from_secs(10));
    }
}

#[test]
fn axis_cut_fanout_prunes_to_matching_shards_without_losing_records() {
    let (data, universe) = fleet();
    let single = build_store(&data, universe);
    // Slice the time axis at the data's quartiles so every slab is
    // populated regardless of how the trace distributes timestamps.
    let mut times: Vec<f64> = data.iter().map(|r| r.time as f64).collect();
    times.sort_by(f64::total_cmp);
    let cuts: Vec<f64> = (1..4).map(|k| times[k * times.len() / 4]).collect();
    assert!(cuts.windows(2).all(|w| w[0] < w[1]), "degenerate quartiles");
    let spec = ShardSpec::AxisCuts {
        axis: 2,
        cuts: cuts.clone(),
    };
    let (servers, map) = start_shards(spec, &data, universe);
    let coordinator = Coordinator::new(map, RouterConfig::default()).unwrap();

    // A thin slab query (strictly below the first cut) must prune its
    // fan-out below 4 shards…
    let thin = Cuboid::new(
        Point::new(universe.min().x, universe.min().y, times[0]),
        Point::new(
            universe.max().x,
            universe.max().y,
            (times[0] + cuts[0]) / 2.0,
        ),
    );
    let dist = coordinator.query(&thin).unwrap();
    assert!(dist.fanout < 4, "thin time slab must prune fan-out");
    assert_eq!(dist.records, sorted(&single.query(&thin).unwrap().records));

    // …and a universe-wide query still gathers everything, losslessly.
    for q in probe_queries(&universe, 8) {
        let dist = coordinator.query(&q).unwrap();
        assert_eq!(
            dist.records,
            sorted(&single.query(&q).unwrap().records),
            "axis-cut merge must be bit-identical"
        );
    }
    if blot_obs::enabled() {
        let snap = coordinator.registry().snapshot();
        assert!(snap.counter("router.fanout_pruned").unwrap_or(0) >= 1);
    }
    for server in servers {
        let _ = server.shutdown(Duration::from_secs(10));
    }
}

/// A stub shard that accepts connections, reads the start of the
/// request, then drops the socket — a server crashing mid-query.
fn spawn_crashing_shard() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Detached on purpose: the loop lives for the test process.
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 64];
            let _ = stream.read(&mut buf);
            drop(stream); // connection reset mid-request
        }
    });
    addr
}

#[test]
fn killed_shard_mid_query_yields_structured_error_with_retry_hint() {
    let (data, universe) = fleet();
    // Shards 0..3 are real; shard 3 is the crash stub.
    let spec = ShardSpec::OidHash { shards: 3 };
    let (servers, healthy_map) = start_shards(spec, &data, universe);
    let mut addrs: Vec<String> = healthy_map.addrs().to_vec();
    addrs.push(spawn_crashing_shard());
    let map = ShardMap::new(2, ShardSpec::OidHash { shards: 4 }, addrs).unwrap();

    let config = RouterConfig {
        pool: PoolConfig {
            shard_retries: 1,
            io_timeout: Duration::from_secs(2),
            retry_backoff_cap: Duration::from_millis(50),
            ..PoolConfig::default()
        },
        gather_timeout: Duration::from_secs(20),
        ..RouterConfig::default()
    };
    let coordinator = Coordinator::new(map, config).unwrap();

    let q = probe_queries(&universe, 1)[0];
    let started = Instant::now();
    let err = coordinator.query(&q).unwrap_err();
    let elapsed = started.elapsed();
    match &err {
        RouterError::ShardUnavailable {
            shard,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*shard, 3, "the crashed shard must be named");
            assert!(*retry_after_ms > 0, "the error must carry a retry hint");
        }
        other => panic!("expected ShardUnavailable, got {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "failure must be prompt, not a hang (took {elapsed:?})"
    );
    if blot_obs::enabled() {
        let snap = coordinator.registry().snapshot();
        assert!(snap.counter("router.shard_failures").unwrap_or(0) >= 1);
        assert!(snap.counter("router.shard3.errors").unwrap_or(0) >= 1);
    }
    for server in servers {
        let _ = server.shutdown(Duration::from_secs(10));
    }
}

#[test]
fn killed_shard_error_propagates_over_the_wire_with_its_hint() {
    let (data, universe) = fleet();
    let (servers, healthy_map) = start_shards(ShardSpec::OidHash { shards: 3 }, &data, universe);
    let mut addrs: Vec<String> = healthy_map.addrs().to_vec();
    addrs.push(spawn_crashing_shard());
    let map = ShardMap::new(2, ShardSpec::OidHash { shards: 4 }, addrs).unwrap();
    let config = RouterConfig {
        pool: PoolConfig {
            shard_retries: 0,
            io_timeout: Duration::from_secs(2),
            retry_backoff_cap: Duration::from_millis(50),
            ..PoolConfig::default()
        },
        ..RouterConfig::default()
    };
    let service = RouterService::new(map, config).unwrap();
    // Front the coordinator with the ordinary serving layer…
    let front = Server::start(Arc::new(service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(&front.local_addr().to_string()).unwrap();
    // …and the structured error (code + retry hint) crosses the wire.
    let q = probe_queries(&universe, 1)[0];
    let wire_err = client.query_once(&q).unwrap().unwrap_err();
    assert_eq!(wire_err.code, ErrorCode::ShardUnavailable);
    assert!(wire_err.retry_after_ms > 0);
    assert!(wire_err.message.contains("shard 3"), "{}", wire_err.message);

    let _ = front.shutdown(Duration::from_secs(10));
    for server in servers {
        let _ = server.shutdown(Duration::from_secs(10));
    }
}

#[test]
fn overloaded_shard_sheds_with_retry_hint_then_recovers() {
    let (data, universe) = fleet();
    let slices = partition(&ShardSpec::OidHash { shards: 2 }, &data);
    // Shard 0 is ordinary; shard 1 has a one-slot admission queue and a
    // long linger so one occupying query holds the queue full.
    let normal = Server::start(
        Arc::new(build_store(&slices[0], universe)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let victim_config = ServerConfig {
        queue_depth: 1,
        batch_linger: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    let victim = Server::start(
        Arc::new(build_store(&slices[1], universe)),
        "127.0.0.1:0",
        victim_config,
    )
    .unwrap();
    let victim_addr = victim.local_addr().to_string();
    let map = ShardMap::new(
        1,
        ShardSpec::OidHash { shards: 2 },
        vec![normal.local_addr().to_string(), victim_addr.clone()],
    )
    .unwrap();
    let config = RouterConfig {
        pool: PoolConfig {
            shard_retries: 0,
            ..PoolConfig::default()
        },
        ..RouterConfig::default()
    };
    let coordinator = Coordinator::new(map, config).unwrap();
    let q = probe_queries(&universe, 1)[0];

    // Occupy the victim's only queue slot for the linger duration.
    let occupier = {
        let addr = victim_addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.query(&q).unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    let err = coordinator.query(&q).unwrap_err();
    match &err {
        RouterError::ShardUnavailable {
            shard,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*shard, 1, "the overloaded shard must be named");
            assert!(
                *retry_after_ms > 0,
                "the shard's shed hint must be forwarded"
            );
        }
        other => panic!("expected ShardUnavailable, got {other}"),
    }
    occupier.join().unwrap();

    // Once the linger drains, the same query succeeds end to end.
    let dist = coordinator.query(&q).unwrap();
    assert_eq!(dist.records, sorted(&data.filter_range(&q)));

    let _ = normal.shutdown(Duration::from_secs(10));
    let _ = victim.shutdown(Duration::from_secs(10));
}

#[test]
fn coordinator_stats_aggregate_every_shard() {
    let (data, universe) = fleet();
    let (servers, map) = start_shards(ShardSpec::OidHash { shards: 4 }, &data, universe);
    let coordinator = Coordinator::new(map, RouterConfig::default()).unwrap();
    // Generate some per-shard work first.
    for q in probe_queries(&universe, 4) {
        coordinator.query(&q).unwrap();
    }
    let doc = blot_json::Json::parse(&coordinator.stats_json(None)).unwrap();
    assert_eq!(
        doc.get("coordinator").and_then(blot_json::Json::as_bool),
        Some(true)
    );
    let shard_map = doc.get("shard_map").unwrap();
    assert_eq!(
        shard_map.get("version").and_then(blot_json::Json::as_u64),
        Some(1)
    );
    let shards = doc
        .get("shards")
        .and_then(blot_json::Json::as_array)
        .unwrap();
    assert_eq!(shards.len(), 4);
    for s in shards {
        assert_eq!(s.get("ok").and_then(blot_json::Json::as_bool), Some(true));
        assert!(s.get("stats").is_some(), "per-shard stats doc present");
    }
    assert!(doc.get("pruning").is_some());
    assert!(doc.get("text").and_then(blot_json::Json::as_str).is_some());
    for server in servers {
        let _ = server.shutdown(Duration::from_secs(10));
    }
}
