//! Property-based tests for shard-map routing.
//!
//! The two invariants distributed correctness rests on:
//!
//! 1. **Exactly one owner** — `shard_of` is a total function into
//!    `0..len`, so partitioning a batch by it assigns every record to
//!    exactly one shard (no loss, no duplication).
//! 2. **Fan-out never misses** — for any query cuboid, every record
//!    the query matches lives on a shard named by `fanout`, checked
//!    against the single-store oracle: filtering the whole batch must
//!    equal filtering the union of the fanned-out shards' slices.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss
)]

use blot_geo::{Cuboid, Point};
use blot_model::{Record, RecordBatch};
use blot_router::{ShardMap, ShardSpec};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (0u32..500, -50i64..50, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(oid, time, x, y)| {
        Record {
            oid,
            time,
            x,
            y,
            speed: 0.0,
            heading: 0.0,
            occupied: false,
            passengers: 0,
        }
    })
}

fn arb_cuboid() -> impl Strategy<Value = Cuboid> {
    let p = || (-120.0f64..120.0, -120.0f64..120.0, -60.0f64..60.0);
    (p(), p()).prop_map(|((ax, ay, at), (bx, by, bt))| {
        let a = Point::new(ax, ay, at);
        let b = Point::new(bx, by, bt);
        Cuboid::new(a.min_with(&b), a.max_with(&b))
    })
}

fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    prop_oneof![
        (1u32..=8).prop_map(|shards| ShardSpec::OidHash { shards }),
        (0usize..3, proptest::collection::vec(-90.0f64..90.0, 1..=5)).prop_map(
            |(axis, mut cuts)| {
                cuts.sort_by(f64::total_cmp);
                cuts.dedup();
                ShardSpec::AxisCuts { axis, cuts }
            }
        ),
    ]
}

fn map_for(spec: &ShardSpec) -> ShardMap {
    let n = spec.shard_count();
    let addrs = (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect();
    ShardMap::new(1, spec.clone(), addrs).unwrap()
}

proptest! {
    #[test]
    fn every_record_lands_on_exactly_one_shard(
        spec in arb_spec(),
        records in proptest::collection::vec(arb_record(), 1..200),
    ) {
        let map = map_for(&spec);
        for r in &records {
            let s = map.shard_of(r);
            prop_assert!(s < map.len(), "shard {} out of range {}", s, map.len());
            // Total function: same record, same shard, every time.
            prop_assert_eq!(s, map.shard_of(r));
        }
    }

    #[test]
    fn fanout_never_misses_a_matching_record(
        spec in arb_spec(),
        records in proptest::collection::vec(arb_record(), 1..200),
        range in arb_cuboid(),
    ) {
        let map = map_for(&spec);
        let fanout = map.fanout(&range);
        for s in &fanout {
            prop_assert!(*s < map.len());
        }
        // Partition the batch exactly as a distributed ingest would.
        let mut shards: Vec<RecordBatch> =
            (0..map.len()).map(|_| RecordBatch::new()).collect();
        let mut whole = RecordBatch::new();
        for r in &records {
            shards[map.shard_of(r) as usize].push(*r);
            whole.push(*r);
        }
        // Oracle: the single-store fingerprint of the query…
        let mut expect = whole.filter_range(&range);
        expect.sort_by_oid_time();
        // …must equal the union of the fanned-out shards' answers.
        let mut got = RecordBatch::new();
        for s in &fanout {
            let part = shards[*s as usize].filter_range(&range);
            for i in 0..part.len() {
                got.push(part.get(i));
            }
        }
        got.sort_by_oid_time();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn axis_fanout_is_contiguous_and_minimal_on_owners(
        cuts in proptest::collection::vec(-90.0f64..90.0, 1..=5),
        records in proptest::collection::vec(arb_record(), 1..100),
    ) {
        let mut cuts = cuts;
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        let map = map_for(&ShardSpec::AxisCuts { axis: 2, cuts });
        // A degenerate cuboid exactly at one record's position must fan
        // out to (at least) that record's owner.
        for r in &records {
            let p = Point::new(r.x, r.y, r.time as f64);
            let probe = Cuboid::new(p, p);
            let fanout = map.fanout(&probe);
            prop_assert!(
                fanout.contains(&map.shard_of(r)),
                "owner {} missing from {:?}",
                map.shard_of(r),
                fanout
            );
            // Contiguity: axis slabs are an interval of shard ids.
            for w in fanout.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1);
            }
        }
    }
}
