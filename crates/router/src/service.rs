//! [`QueryService`] adapter: front a [`Coordinator`] with the
//! existing `blot-server` TCP layer.
//!
//! `Server::start` accepts any `QueryService`, so wrapping the
//! coordinator in [`RouterService`] gives the distributed tier the
//! whole serving stack — framing, admission control, micro-batching,
//! graceful drain, tracing — for free, and `blot query --coordinator`
//! is just the ordinary remote client pointed at it.

use std::sync::Arc;

use blot_core::obs::{DriftBand, DriftReport};
use blot_core::store::{QueryResult, QueryService, TracedQuery};
use blot_core::CoreError;
use blot_geo::Cuboid;
use blot_obs::{FlightRecorder, MetricsRegistry};
use blot_storage::ScanExecutor;

use crate::coordinator::{Coordinator, DistributedQueryResult, RouterConfig};
use crate::error::RouterError;
use crate::shardmap::ShardMap;

/// A [`Coordinator`] wearing the store's serving trait.
#[derive(Debug)]
pub struct RouterService {
    inner: Coordinator,
}

/// The coordinator has no replica of its own; the `replica` slot of a
/// merged [`QueryResult`] is fixed to this sentinel (each shard's real
/// routing decision is in the coordinator's trace and stats views).
pub const COORDINATOR_REPLICA: u32 = 0;

fn into_query_result(r: DistributedQueryResult) -> QueryResult {
    QueryResult {
        records: r.records,
        replica: COORDINATOR_REPLICA,
        sim_ms: r.sim_ms,
        makespan_ms: r.makespan_ms,
        partitions_scanned: r.partitions_scanned,
        units_skipped: r.units_skipped,
        bytes_skipped: r.bytes_skipped,
        failed_over: Vec::new(),
    }
}

impl RouterService {
    /// Builds the service (and its coordinator) over `map`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Coordinator::new`].
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Self, RouterError> {
        Ok(Self {
            inner: Coordinator::new(map, config)?,
        })
    }

    /// The coordinator behind the trait surface.
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator {
        &self.inner
    }
}

impl QueryService for RouterService {
    fn query(&self, range: &Cuboid) -> Result<QueryResult, CoreError> {
        self.inner
            .query(range)
            .map(into_query_result)
            .map_err(CoreError::from)
    }

    fn query_batch(&self, ranges: &[Cuboid]) -> Vec<Result<QueryResult, CoreError>> {
        let queries: Vec<(Cuboid, _)> = ranges.iter().map(|r| (*r, None)).collect();
        self.inner
            .query_batch_traced(&queries)
            .into_iter()
            .map(|r| r.map(into_query_result).map_err(CoreError::from))
            .collect()
    }

    fn query_batch_traced(&self, queries: &[TracedQuery]) -> Vec<Result<QueryResult, CoreError>> {
        let queries: Vec<(Cuboid, _)> = queries.iter().map(|q| (q.range, q.ctx)).collect();
        self.inner
            .query_batch_traced(&queries)
            .into_iter()
            .map(|r| r.map(into_query_result).map_err(CoreError::from))
            .collect()
    }

    fn recorder(&self) -> FlightRecorder {
        self.inner.recorder().clone()
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.inner.registry().clone()
    }

    fn drift_report(&self, band: DriftBand) -> DriftReport {
        // Drift is a per-shard, per-replica concern; the aggregated
        // view lives in `stats_json`'s per-shard documents.
        DriftReport::from_samples(
            band,
            std::iter::empty::<(blot_codec::EncodingScheme, blot_obs::HistogramSnapshot)>(),
        )
    }

    fn stats_json(&self, band: Option<DriftBand>) -> Option<String> {
        Some(self.inner.stats_json(band))
    }

    fn universe(&self) -> Cuboid {
        self.inner.universe()
    }

    fn executor(&self) -> Arc<ScanExecutor> {
        Arc::clone(self.inner.executor())
    }
}

const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<RouterService>();
};
