//! Structured coordinator errors.
//!
//! A scatter-gather query either merges **every** shard's reply or
//! fails as a whole — partial results are never returned silently.
//! Failures therefore name the shard at fault and carry the retry
//! hint the serving layer forwards on the wire.

use std::fmt;

use blot_core::CoreError;

/// Error from the shard router.
#[derive(Debug)]
pub enum RouterError {
    /// The shard map itself is malformed (mismatched address count,
    /// bad cut points, zero shards).
    BadShardMap {
        /// What was wrong with the map.
        detail: String,
    },
    /// A shard could not be reached, repeatedly shed the sub-query, or
    /// failed to reply before the gather deadline. Retryable: the
    /// hint says how long to wait.
    ShardUnavailable {
        /// The shard that failed.
        shard: u32,
        /// The address the coordinator tried.
        addr: String,
        /// Suggested wait before retrying, in milliseconds (0 = no
        /// hint).
        retry_after_ms: u32,
        /// Human-readable description of the underlying failure.
        detail: String,
    },
    /// A shard answered with a server-side error that retrying will
    /// not fix (malformed request, storage fault, empty store).
    ShardFatal {
        /// The shard that failed.
        shard: u32,
        /// The address the coordinator tried.
        addr: String,
        /// The shard's own error message.
        detail: String,
    },
    /// A worker thread could not be spawned for the connection pool.
    Spawn(std::io::Error),
}

impl RouterError {
    /// The retry-after hint this error carries, in milliseconds.
    /// Non-zero only for [`RouterError::ShardUnavailable`].
    #[must_use]
    pub fn retry_after_ms(&self) -> u32 {
        match self {
            Self::ShardUnavailable { retry_after_ms, .. } => *retry_after_ms,
            _ => 0,
        }
    }
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadShardMap { detail } => write!(f, "bad shard map: {detail}"),
            Self::ShardUnavailable {
                shard,
                addr,
                retry_after_ms,
                detail,
            } => {
                write!(f, "shard {shard} ({addr}) unavailable: {detail}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
            Self::ShardFatal {
                shard,
                addr,
                detail,
            } => write!(f, "shard {shard} ({addr}) failed: {detail}"),
            Self::Spawn(e) => write!(f, "could not spawn pool worker: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

/// The serving layer speaks [`CoreError`]; a coordinator fronted by
/// `blot-server` maps every routing failure onto the store error
/// surface, preserving the retry hint.
impl From<RouterError> for CoreError {
    fn from(e: RouterError) -> Self {
        let retry_after_ms = e.retry_after_ms();
        let shard = match &e {
            RouterError::ShardUnavailable { shard, .. } | RouterError::ShardFatal { shard, .. } => {
                *shard
            }
            _ => u32::MAX,
        };
        Self::ShardUnavailable {
            shard,
            retry_after_ms,
            detail: e.to_string(),
        }
    }
}

const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<RouterError>()
};
