//! The versioned shard map: which shard owns which records, and which
//! shards a query cuboid must visit.
//!
//! Two partitioning families cover the paper's deployment axes:
//!
//! * **OID hash** — records spread by a deterministic hash of the
//!   object id. Placement is balanced regardless of fleet geometry,
//!   but every range query fans out to every shard (an object can be
//!   anywhere in space).
//! * **Axis cuts** — the spatio-temporal universe is sliced along one
//!   axis (x, y or t) at fixed cut points; shard `i` owns the
//!   half-open interval `[cuts[i-1], cuts[i])`, with the first and
//!   last shards extending to ±∞. Fan-out prunes to exactly the
//!   shards whose slab a (closed) query cuboid overlaps.
//!
//! Both assign every record to **exactly one** shard — the property
//! the routing proptests pin — and both are carried inside a
//! [`ShardMap`] stamped with a version so coordinator and operators
//! can tell stale maps apart.

use blot_geo::Cuboid;
use blot_json::Json;
use blot_model::Record;

use crate::error::RouterError;

/// How records are assigned to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardSpec {
    /// Spread by a deterministic hash of the object id over `shards`
    /// buckets. Every query fans out to every shard.
    OidHash {
        /// Number of shards (≥ 1).
        shards: u32,
    },
    /// Slice one axis (0 = x, 1 = y, 2 = t) at sorted interior cut
    /// points; `cuts.len() + 1` shards. Queries fan out only to the
    /// slabs they overlap.
    AxisCuts {
        /// The sliced axis: 0 (x), 1 (y) or 2 (t).
        axis: usize,
        /// Strictly increasing, finite interior cut points.
        cuts: Vec<f64>,
    },
}

impl ShardSpec {
    /// The number of shards this spec implies.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        match self {
            Self::OidHash { shards } => *shards,
            Self::AxisCuts { cuts, .. } => {
                u32::try_from(cuts.len().saturating_add(1)).unwrap_or(u32::MAX)
            }
        }
    }
}

/// A versioned assignment of the fleet to shard servers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    version: u64,
    spec: ShardSpec,
    addrs: Vec<String>,
}

/// FNV-1a over the object id's little-endian bytes: deterministic
/// across processes and platforms, so every coordinator instance (and
/// the ingest side placing records) agrees on placement.
fn oid_bucket(oid: u32, shards: u32) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for b in oid.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // shards >= 1 is validated at map construction.
    u32::try_from(h % u64::from(shards.max(1))).unwrap_or(0)
}

impl ShardMap {
    /// Builds a map binding `spec` to one address per shard.
    ///
    /// # Errors
    ///
    /// [`RouterError::BadShardMap`] when the spec implies zero shards,
    /// the address count does not match, the axis is out of range, or
    /// the cut points are not finite and strictly increasing.
    pub fn new(version: u64, spec: ShardSpec, addrs: Vec<String>) -> Result<Self, RouterError> {
        let bad = |detail: String| RouterError::BadShardMap { detail };
        let count = spec.shard_count();
        if count == 0 {
            return Err(bad("spec implies zero shards".to_owned()));
        }
        match &spec {
            ShardSpec::OidHash { .. } => {}
            ShardSpec::AxisCuts { axis, cuts } => {
                if *axis > 2 {
                    return Err(bad(format!("axis {axis} out of range (0..=2)")));
                }
                let mut prev: Option<f64> = None;
                for (i, c) in cuts.iter().enumerate() {
                    if !c.is_finite() {
                        return Err(bad(format!("cut {i} is not finite")));
                    }
                    if prev.is_some_and(|p| p >= *c) {
                        return Err(bad(format!("cuts not strictly increasing at index {i}")));
                    }
                    prev = Some(*c);
                }
            }
        }
        if addrs.len() != count as usize {
            return Err(bad(format!(
                "spec implies {count} shard(s) but {} address(es) given",
                addrs.len()
            )));
        }
        Ok(Self {
            version,
            spec,
            addrs,
        })
    }

    /// The map's version stamp.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The partitioning spec.
    #[must_use]
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.spec.shard_count()
    }

    /// Whether the map holds no shards (never true for a constructed
    /// map; kept for API symmetry with `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The address serving `shard`, if it exists.
    #[must_use]
    pub fn addr(&self, shard: u32) -> Option<&str> {
        self.addrs.get(shard as usize).map(String::as_str)
    }

    /// All shard addresses, indexed by shard id.
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The shard owning `record` — total: every record lands on
    /// exactly one shard.
    #[must_use]
    pub fn shard_of(&self, record: &Record) -> u32 {
        match &self.spec {
            ShardSpec::OidHash { shards } => oid_bucket(record.oid, *shards),
            ShardSpec::AxisCuts { axis, cuts } => {
                #[allow(clippy::cast_precision_loss)] // times are small ints
                let v = match axis {
                    0 => record.x,
                    1 => record.y,
                    _ => record.time as f64,
                };
                Self::slab_of(cuts, v)
            }
        }
    }

    /// The slab index of coordinate `v`: the number of cuts at or
    /// below it, giving half-open `[cuts[i-1], cuts[i])` ownership.
    fn slab_of(cuts: &[f64], v: f64) -> u32 {
        u32::try_from(cuts.partition_point(|c| *c <= v)).unwrap_or(u32::MAX)
    }

    /// The shards a (closed) query cuboid must visit, ascending. Never
    /// misses a shard that could hold a matching record: under
    /// `OidHash` that is every shard; under `AxisCuts` every slab the
    /// closed interval `[min, max]` on the cut axis overlaps.
    #[must_use]
    pub fn fanout(&self, range: &Cuboid) -> Vec<u32> {
        match &self.spec {
            ShardSpec::OidHash { shards } => (0..*shards).collect(),
            ShardSpec::AxisCuts { axis, cuts } => {
                let lo = range.min().axis(*axis);
                let hi = range.max().axis(*axis);
                if lo > hi {
                    return Vec::new();
                }
                (Self::slab_of(cuts, lo)..=Self::slab_of(cuts, hi)).collect()
            }
        }
    }

    /// The map as a JSON document (for the aggregated `Stats` view).
    #[must_use]
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        let spec = match &self.spec {
            ShardSpec::OidHash { shards } => Json::obj([
                ("kind", Json::Str("oid_hash".to_owned())),
                ("shards", Json::Num(f64::from(*shards))),
            ]),
            ShardSpec::AxisCuts { axis, cuts } => Json::obj([
                ("kind", Json::Str("axis_cuts".to_owned())),
                ("axis", Json::Num(*axis as f64)),
                (
                    "cuts",
                    Json::Arr(cuts.iter().map(|c| Json::Num(*c)).collect()),
                ),
            ]),
        };
        #[allow(clippy::cast_precision_loss)]
        Json::obj([
            ("version", Json::Num(self.version as f64)),
            ("spec", spec),
            (
                "addrs",
                Json::Arr(self.addrs.iter().map(|a| Json::Str(a.clone())).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use blot_geo::Point;

    fn rec(oid: u32, time: i64, x: f64, y: f64) -> Record {
        Record {
            oid,
            time,
            x,
            y,
            speed: 0.0,
            heading: 0.0,
            occupied: false,
            passengers: 0,
        }
    }

    #[test]
    fn oid_hash_is_total_and_stable() {
        let map = ShardMap::new(
            1,
            ShardSpec::OidHash { shards: 4 },
            (0..4).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
        )
        .unwrap();
        for oid in 0..1000 {
            let s = map.shard_of(&rec(oid, 0, 0.0, 0.0));
            assert!(s < 4);
            assert_eq!(s, map.shard_of(&rec(oid, 99, 5.0, 5.0)), "oid-only");
        }
        let range = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        assert_eq!(map.fanout(&range), vec![0, 1, 2, 3]);
    }

    #[test]
    fn axis_cuts_assign_half_open_slabs() {
        let map = ShardMap::new(
            1,
            ShardSpec::AxisCuts {
                axis: 2,
                cuts: vec![10.0, 20.0],
            },
            (0..3).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
        )
        .unwrap();
        assert_eq!(map.shard_of(&rec(0, 9, 0.0, 0.0)), 0);
        assert_eq!(map.shard_of(&rec(0, 10, 0.0, 0.0)), 1, "cut point goes up");
        assert_eq!(map.shard_of(&rec(0, 19, 0.0, 0.0)), 1);
        assert_eq!(map.shard_of(&rec(0, 25, 0.0, 0.0)), 2);
    }

    #[test]
    fn axis_cuts_fanout_prunes_and_covers_boundaries() {
        let map = ShardMap::new(
            1,
            ShardSpec::AxisCuts {
                axis: 2,
                cuts: vec![10.0, 20.0],
            },
            (0..3).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
        )
        .unwrap();
        let q =
            |lo: f64, hi: f64| Cuboid::new(Point::new(-1e9, -1e9, lo), Point::new(1e9, 1e9, hi));
        assert_eq!(map.fanout(&q(0.0, 5.0)), vec![0]);
        assert_eq!(map.fanout(&q(11.0, 19.0)), vec![1]);
        // A query ending exactly on a cut must include the upper slab:
        // records at t == 10 live there and the cuboid is closed.
        assert_eq!(map.fanout(&q(5.0, 10.0)), vec![0, 1]);
        assert_eq!(map.fanout(&q(0.0, 30.0)), vec![0, 1, 2]);
    }

    #[test]
    fn bad_maps_are_rejected() {
        assert!(ShardMap::new(1, ShardSpec::OidHash { shards: 0 }, vec![]).is_err());
        assert!(ShardMap::new(1, ShardSpec::OidHash { shards: 2 }, vec!["a".to_owned()]).is_err());
        assert!(ShardMap::new(
            1,
            ShardSpec::AxisCuts {
                axis: 3,
                cuts: vec![1.0]
            },
            vec!["a".to_owned(), "b".to_owned()]
        )
        .is_err());
        assert!(ShardMap::new(
            1,
            ShardSpec::AxisCuts {
                axis: 2,
                cuts: vec![2.0, 1.0]
            },
            vec!["a".to_owned(), "b".to_owned(), "c".to_owned()]
        )
        .is_err());
        assert!(ShardMap::new(
            1,
            ShardSpec::AxisCuts {
                axis: 2,
                cuts: vec![f64::NAN]
            },
            vec!["a".to_owned(), "b".to_owned()]
        )
        .is_err());
    }
}
