//! Distributed BLOT: the shard router.
//!
//! The paper (§VI) evaluates diverse replicas on a storage cluster;
//! this crate adds the missing tier to the reproduction: a
//! **coordinator** that partitions the fleet across N independent
//! `blot-server` nodes and serves range queries over all of them as
//! if they were one store.
//!
//! * [`ShardMap`] / [`ShardSpec`] — the versioned partitioning
//!   contract: every record lands on exactly one shard (OID hash or
//!   axis cuts), and `fanout` names every shard a query cuboid could
//!   match.
//! * [`Coordinator`] — scatter-gather over the existing wire protocol
//!   via per-shard connection pools with retry/backoff; merges
//!   ROW-PLAIN results into canonical `(oid, time)` order,
//!   bit-identical to a single-store execution; all-or-nothing
//!   failure with structured, retry-hinted errors.
//! * [`RouterService`] — the coordinator wearing
//!   `blot_core::store::QueryService`, so `blot_server::Server` fronts
//!   it unchanged (`blot route serve`).
//!
//! Replica selection stays **local to each shard**: a shard runs CELF
//! against its own workload slice and the coordinator only sees which
//! replica answered, via its stats and trace views.

#![forbid(unsafe_code)]

pub mod coordinator;
pub mod error;
pub mod pool;
pub mod service;
pub mod shardmap;

pub use coordinator::{Coordinator, DistributedQueryResult, RouterConfig, ShardLeg};
pub use error::RouterError;
pub use pool::PoolConfig;
pub use service::{RouterService, COORDINATOR_REPLICA};
pub use shardmap::{ShardMap, ShardSpec};
