//! The per-shard connection pool.
//!
//! Every shard gets `conns_per_shard` persistent worker threads, each
//! owning (at most) one [`Client`] connection to that shard. Jobs are
//! dispatched over a per-shard channel whose receiver the workers
//! share behind a [`Mutex`] — the worker holding the lock blocks in
//! `recv`, hands the lock over once it has a job, and executes
//! outside the lock, so a shard's connections drain its queue
//! concurrently.
//!
//! Retry policy lives here, per sub-query: transport errors tear the
//! connection down and reconnect; `Overloaded` / `ShardUnavailable`
//! replies honour the server's retry-after hint (capped); fatal wire
//! errors surface immediately. A worker always sends a reply — success
//! or structured failure — so the gather side never hangs on a dead
//! shard; at worst it waits out the bounded I/O timeouts.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use blot_core::obs::DriftBand;
use blot_geo::Cuboid;
use blot_obs::SpanContext;
use blot_server::client::{disposition, Client, ClientConfig, Disposition};
use blot_server::wire::RemoteQueryResult;
use blot_storage::sync::Mutex;

use crate::error::RouterError;
use crate::shardmap::ShardMap;

/// Fallback retry hint when a shard fails without offering one
/// (connection refused, reset mid-reply, gather timeout).
pub const DEFAULT_RETRY_HINT_MS: u32 = 100;

/// Pause between reconnect attempts after a transport error, so a
/// crashed shard is probed, not hammered.
const RECONNECT_PAUSE: Duration = Duration::from_millis(20);

/// Tuning for the pool and its retry policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (= max in-flight sub-queries) per shard.
    pub conns_per_shard: usize,
    /// Extra attempts per sub-query after the first fails retryably.
    pub shard_retries: u32,
    /// Per-read/write transport timeout on shard connections.
    pub io_timeout: Duration,
    /// Ceiling on a single retry wait, whatever the shard's hint says.
    pub retry_backoff_cap: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            conns_per_shard: 2,
            shard_retries: 2,
            io_timeout: Duration::from_secs(10),
            retry_backoff_cap: Duration::from_millis(500),
        }
    }
}

/// How a sub-query failed, before the coordinator attaches shard
/// identity.
#[derive(Debug)]
pub(crate) struct ShardFailure {
    /// Whether waiting and retrying the whole query could succeed.
    pub retryable: bool,
    /// Suggested wait, ms.
    pub retry_after_ms: u32,
    /// Underlying cause.
    pub detail: String,
}

/// One shard's answer to a scattered sub-query.
#[derive(Debug)]
pub(crate) struct ShardReply {
    pub shard: u32,
    pub outcome: Result<RemoteQueryResult, ShardFailure>,
    /// Retries spent before this outcome.
    pub retries: u32,
}

pub(crate) enum Job {
    Query {
        range: Cuboid,
        ctx: Option<SpanContext>,
        reply: Sender<ShardReply>,
    },
    Stats {
        band: Option<DriftBand>,
        reply: Sender<(u32, Result<String, ShardFailure>)>,
    },
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Query { range, .. } => f.debug_struct("Query").field("range", range).finish(),
            Self::Stats { .. } => f.debug_struct("Stats").finish(),
        }
    }
}

/// The pool: one job channel per shard, fanned over that shard's
/// workers.
#[derive(Debug)]
pub(crate) struct ShardPool {
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `conns_per_shard` workers per shard of `map`.
    ///
    /// # Errors
    ///
    /// [`RouterError::Spawn`] when the OS refuses a worker thread.
    pub fn new(map: &ShardMap, config: &PoolConfig) -> Result<Self, RouterError> {
        let mut senders = Vec::new();
        let mut workers = Vec::new();
        for (shard, addr) in map.addrs().iter().enumerate() {
            let shard = u32::try_from(shard).unwrap_or(u32::MAX);
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            for conn in 0..config.conns_per_shard.max(1) {
                let rx = Arc::clone(&rx);
                let addr = addr.clone();
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("blot-shard{shard}-c{conn}"))
                    .spawn(move || worker_loop(shard, &addr, &config, &rx))
                    .map_err(RouterError::Spawn)?;
                workers.push(handle);
            }
            senders.push(tx);
        }
        Ok(Self { senders, workers })
    }

    /// Enqueues `job` for `shard`.
    ///
    /// # Errors
    ///
    /// Returns the job back when the shard id is unknown or its
    /// workers have exited (pool shut down).
    pub fn submit(&self, shard: u32, job: Job) -> Result<(), Job> {
        match self.senders.get(shard as usize) {
            Some(tx) => tx.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    /// Drops the job channels and joins every worker.
    pub fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Hands a worker's reply to the gather side. The gather may already
/// have timed out and dropped its receiver; a failed send then means
/// no one is left to tell, so the drop is vetted once here instead of
/// at every reply site.
fn deliver<T>(reply: &Sender<T>, msg: T) {
    // audit: allow(result-discipline, the gather side owns the receiver and may legitimately have timed out and dropped it — nothing useful to do with the echo)
    let _ = reply.send(msg);
}

/// One worker: pull jobs off the shared receiver, run them against the
/// shard with retry/backoff, always reply.
fn worker_loop(shard: u32, addr: &str, config: &PoolConfig, rx: &Mutex<Receiver<Job>>) {
    let mut client: Option<Client> = None;
    loop {
        // Blocking in `recv` while holding the lock is deliberate: at
        // most one idle worker camps on the channel, and it releases
        // the lock before executing, so its siblings pick up the next
        // job concurrently.
        let recv = rx.lock().recv();
        let Ok(job) = recv else {
            return; // pool dropped — drain complete
        };
        match job {
            Job::Query { range, ctx, reply } => {
                let (outcome, retries) = run_query(&mut client, addr, config, &range, ctx);
                deliver(
                    &reply,
                    ShardReply {
                        shard,
                        outcome,
                        retries,
                    },
                );
            }
            Job::Stats { band, reply } => {
                let outcome = run_stats(&mut client, addr, config, band);
                deliver(&reply, (shard, outcome));
            }
        }
    }
}

fn connect(addr: &str, config: &PoolConfig) -> Result<Client, String> {
    // Per-attempt retries are handled here (where the coordinator can
    // see them), so the inner client performs none of its own.
    let cc = ClientConfig {
        io_timeout: config.io_timeout,
        max_retries: 0,
        max_backoff: config.retry_backoff_cap,
    };
    Client::connect_with(addr, cc).map_err(|e| e.to_string())
}

/// Executes one sub-query with the pool's retry policy. Returns the
/// outcome and the number of retries spent.
fn run_query(
    client: &mut Option<Client>,
    addr: &str,
    config: &PoolConfig,
    range: &Cuboid,
    ctx: Option<SpanContext>,
) -> (Result<RemoteQueryResult, ShardFailure>, u32) {
    let mut retries = 0u32;
    loop {
        let attempt = (|| -> Result<Result<RemoteQueryResult, ShardFailure>, (String, u32)> {
            let conn = match client.as_mut() {
                Some(c) => c,
                None => {
                    let fresh = connect(addr, config).map_err(|e| (e, DEFAULT_RETRY_HINT_MS))?;
                    client.insert(fresh)
                }
            };
            match conn.query_once_traced(range, ctx) {
                // Transport fault: the connection is suspect either way.
                Err(e) => {
                    *client = None;
                    Err((e.to_string(), DEFAULT_RETRY_HINT_MS))
                }
                Ok(Ok(result)) => Ok(Ok(result)),
                Ok(Err(wire)) => match disposition(wire.code) {
                    Disposition::Fatal => Ok(Err(ShardFailure {
                        retryable: false,
                        retry_after_ms: 0,
                        detail: wire.to_string(),
                    })),
                    Disposition::Reconnect => {
                        *client = None;
                        Err((wire.to_string(), 0))
                    }
                    Disposition::RetryAfterHint => {
                        let hint = wire.retry_after_ms.max(1);
                        Err((wire.to_string(), hint))
                    }
                },
            }
        })();
        match attempt {
            Ok(outcome) => return (outcome, retries),
            Err((detail, hint)) => {
                if retries >= config.shard_retries {
                    return (
                        Err(ShardFailure {
                            retryable: true,
                            retry_after_ms: hint.max(DEFAULT_RETRY_HINT_MS),
                            detail,
                        }),
                        retries,
                    );
                }
                retries = retries.saturating_add(1);
                let wait = Duration::from_millis(u64::from(hint)).min(config.retry_backoff_cap);
                let wait = wait.max(RECONNECT_PAUSE);
                std::thread::sleep(wait);
            }
        }
    }
}

/// Fetches one shard's `Stats` document (single attempt plus one
/// reconnect; stats are advisory, not worth a backoff dance).
fn run_stats(
    client: &mut Option<Client>,
    addr: &str,
    config: &PoolConfig,
    band: Option<DriftBand>,
) -> Result<String, ShardFailure> {
    for _ in 0..2u8 {
        let conn = match client.as_mut() {
            Some(c) => c,
            None => match connect(addr, config) {
                Ok(fresh) => client.insert(fresh),
                Err(detail) => {
                    return Err(ShardFailure {
                        retryable: true,
                        retry_after_ms: DEFAULT_RETRY_HINT_MS,
                        detail,
                    })
                }
            },
        };
        match conn.stats(band) {
            Ok(doc) => return Ok(doc),
            Err(e) => {
                *client = None;
                if let blot_server::client::ClientError::Server(wire) = &e {
                    return Err(ShardFailure {
                        retryable: false,
                        retry_after_ms: 0,
                        detail: wire.to_string(),
                    });
                }
            }
        }
    }
    Err(ShardFailure {
        retryable: true,
        retry_after_ms: DEFAULT_RETRY_HINT_MS,
        detail: "stats fetch failed after reconnect".to_owned(),
    })
}
