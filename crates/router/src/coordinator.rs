//! The scatter-gather coordinator.
//!
//! One [`Coordinator`] owns a versioned [`ShardMap`] and a
//! [`ShardPool`]; a query is (1) fanned out to exactly the shards the
//! map says could hold matching records, (2) gathered under a
//! deadline, and (3) merged into the canonical `(oid, time)` order —
//! bit-identical to running the same query against one store holding
//! the whole fleet, because shards partition the records and the
//! final filter/sort are deterministic.
//!
//! Failure semantics: all-or-nothing. If any shard leg fails after
//! the pool's retries, the whole query fails with a structured
//! [`RouterError`] naming the shard and carrying a retry hint;
//! successful legs are discarded, never silently merged into a
//! partial answer.

use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blot_core::obs::DriftBand;
use blot_geo::{Cuboid, Point};
use blot_json::Json;
use blot_model::RecordBatch;
use blot_obs::trace::TraceSpan;
use blot_obs::{names, FlightRecorder, MetricsRegistry, RouterMetrics, SpanContext};
use blot_storage::ScanExecutor;

use crate::error::RouterError;
use crate::pool::{Job, PoolConfig, ShardPool, ShardReply, DEFAULT_RETRY_HINT_MS};
use crate::shardmap::ShardMap;

/// Tuning for a coordinator.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connection pool and per-shard retry policy.
    pub pool: PoolConfig,
    /// Deadline for all shards of one query to reply, measured from
    /// dispatch. Generous by default: the pool's own I/O timeouts and
    /// retry caps bound each leg well below this.
    pub gather_timeout: Duration,
    /// Flight-recorder ring capacity (spans).
    pub recorder_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::default(),
            gather_timeout: Duration::from_secs(30),
            recorder_capacity: 4096,
        }
    }
}

/// One shard's contribution to a merged result.
#[derive(Debug, Clone)]
pub struct ShardLeg {
    /// The shard id.
    pub shard: u32,
    /// The replica the shard's local selection routed to.
    pub replica: u32,
    /// Records the shard contributed.
    pub records: usize,
    /// The shard's simulated scan cost, ms.
    pub sim_ms: f64,
    /// Storage units the shard's zone maps skipped.
    pub units_skipped: u64,
    /// Payload bytes the shard never fetched thanks to pruning.
    pub bytes_skipped: u64,
    /// Retries the pool spent on this leg.
    pub retries: u32,
}

/// A merged scatter-gather result.
#[derive(Debug, Clone)]
pub struct DistributedQueryResult {
    /// All matching records, sorted by `(oid, time)` — the same order
    /// and content a single store holding the whole fleet returns.
    pub records: RecordBatch,
    /// Sum of per-shard simulated costs, ms.
    pub sim_ms: f64,
    /// Max of per-shard simulated makespans, ms (shards run in
    /// parallel).
    pub makespan_ms: f64,
    /// Sum of per-shard partitions scanned.
    pub partitions_scanned: usize,
    /// Sum of per-shard units skipped by zone maps.
    pub units_skipped: usize,
    /// Sum of per-shard bytes never fetched.
    pub bytes_skipped: u64,
    /// Shards this query fanned out to.
    pub fanout: u32,
    /// Per-shard breakdown, ascending by shard id.
    pub shards: Vec<ShardLeg>,
}

/// The coordinator: shard map + pool + instruments.
#[derive(Debug)]
pub struct Coordinator {
    map: ShardMap,
    pool: ShardPool,
    registry: MetricsRegistry,
    metrics: RouterMetrics,
    recorder: FlightRecorder,
    executor: Arc<ScanExecutor>,
    config: RouterConfig,
}

/// An in-flight scattered query awaiting its gather.
struct Pending {
    root: TraceSpan,
    legs: Vec<(u32, TraceSpan)>,
    rx: std::sync::mpsc::Receiver<ShardReply>,
    /// Sub-queries that never reached a worker (pool shut down); the
    /// gather consumes these before listening on `rx`.
    failed: Vec<ShardReply>,
    started: Instant,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("legs", &self.legs.len())
            .finish()
    }
}

impl Coordinator {
    /// Builds a coordinator over `map` and spawns its connection pool.
    /// Shard connections are opened lazily on first use, so shards may
    /// come up after the coordinator does.
    ///
    /// # Errors
    ///
    /// [`RouterError::Spawn`] when a pool worker thread cannot be
    /// spawned.
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Self, RouterError> {
        let pool = ShardPool::new(&map, &config.pool)?;
        let registry = MetricsRegistry::new();
        let metrics = RouterMetrics::register(&registry, map.len());
        let recorder = FlightRecorder::new(config.recorder_capacity);
        Ok(Self {
            map,
            pool,
            registry,
            metrics,
            recorder,
            executor: Arc::new(ScanExecutor::new(1)),
            config,
        })
    }

    /// The shard map this coordinator routes by.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The registry holding the router's instruments.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The coordinator's flight recorder (scatter-gather span trees).
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The (trivial, single-thread) executor handle a fronting server
    /// drains on graceful shutdown.
    #[must_use]
    pub fn executor(&self) -> &Arc<ScanExecutor> {
        &self.executor
    }

    /// A universe covering everything the map can route: the shard
    /// layer has no record bounds of its own, so the coordinator
    /// advertises an effectively unbounded (finite) cuboid.
    #[must_use]
    pub fn universe(&self) -> Cuboid {
        const BIG: f64 = 1e18;
        Cuboid::new(Point::new(-BIG, -BIG, -BIG), Point::new(BIG, BIG, BIG))
    }

    /// Scatter-gathers one range query. See the module docs for merge
    /// and failure semantics.
    ///
    /// # Errors
    ///
    /// [`RouterError::ShardUnavailable`] when a shard stayed
    /// unreachable / shed past the retry budget or missed the gather
    /// deadline; [`RouterError::ShardFatal`] when a shard answered
    /// with a non-retryable error.
    pub fn query(&self, range: &Cuboid) -> Result<DistributedQueryResult, RouterError> {
        self.query_traced(range, None)
    }

    /// Like [`Coordinator::query`], parenting the scatter-gather span
    /// tree under `parent` (a remote client's wire trace context).
    ///
    /// # Errors
    ///
    /// Same contract as [`Coordinator::query`].
    pub fn query_traced(
        &self,
        range: &Cuboid,
        parent: Option<SpanContext>,
    ) -> Result<DistributedQueryResult, RouterError> {
        let pending = self.scatter(range, parent);
        self.gather(pending)
    }

    /// Scatter-gathers a micro-batch: every query's sub-queries are
    /// dispatched before any gather starts, so the shards' pools work
    /// all legs of the batch concurrently (the distributed analogue of
    /// the store's `query_batch` pooling). One entry per input range,
    /// in order.
    ///
    /// # Errors
    ///
    /// Each entry fails independently with the same contract as
    /// [`Coordinator::query`]; one shard's failure does not poison the
    /// batch's other queries.
    #[must_use]
    pub fn query_batch_traced(
        &self,
        queries: &[(Cuboid, Option<SpanContext>)],
    ) -> Vec<Result<DistributedQueryResult, RouterError>> {
        let pending: Vec<Pending> = queries
            .iter()
            .map(|(range, ctx)| self.scatter(range, *ctx))
            .collect();
        pending.into_iter().map(|p| self.gather(p)).collect()
    }

    /// Dispatches one query's sub-queries to the pool and returns the
    /// gather handle.
    fn scatter(&self, range: &Cuboid, parent: Option<SpanContext>) -> Pending {
        let mut root = match parent {
            Some(ctx) => self.recorder.span_under(ctx, names::ROUTER_QUERY),
            None => self.recorder.span(names::ROUTER_QUERY),
        };
        let targets = self.map.fanout(range);
        self.metrics.queries.inc();
        #[allow(clippy::cast_precision_loss)]
        self.metrics.fanout.record(targets.len() as f64);
        if targets.len() < self.map.len() as usize {
            self.metrics.fanout_pruned.inc();
        }
        root.note(names::FANOUT, targets.len() as u64);
        let (tx, rx) = std::sync::mpsc::channel::<ShardReply>();
        let mut legs = Vec::with_capacity(targets.len());
        let mut failed = Vec::new();
        for shard in targets {
            let mut leg = root.child(names::ROUTER_SHARD);
            leg.note(names::SHARD, u64::from(shard));
            if let Some(c) = self.metrics.shard_queries.get(shard as usize) {
                c.inc();
            }
            let job = Job::Query {
                range: *range,
                // The shard's server parents its own span tree under
                // this leg, so a remote trace shows the full path:
                // client → router.query → router.shard → server.request.
                ctx: leg.context(),
                reply: tx.clone(),
            };
            if let Err(job) = self.pool.submit(shard, job) {
                // Workers only exit when the pool is dropped; record
                // the failure for the gather to consume first.
                drop(job);
                failed.push(ShardReply {
                    shard,
                    outcome: Err(crate::pool::ShardFailure {
                        retryable: true,
                        retry_after_ms: DEFAULT_RETRY_HINT_MS,
                        detail: "shard pool is shut down".to_owned(),
                    }),
                    retries: 0,
                });
            }
            legs.push((shard, leg));
        }
        Pending {
            root,
            legs,
            rx,
            failed,
            started: Instant::now(),
        }
    }

    /// Waits for every leg, then merges or fails as a whole.
    fn gather(&self, pending: Pending) -> Result<DistributedQueryResult, RouterError> {
        let Pending {
            mut root,
            legs,
            rx,
            failed,
            started,
        } = pending;
        let expected = legs.len();
        let fanout = u32::try_from(expected).unwrap_or(u32::MAX);
        let mut legs: Vec<(u32, Option<TraceSpan>)> =
            legs.into_iter().map(|(s, l)| (s, Some(l))).collect();
        let deadline = started + self.config.gather_timeout;
        let mut replies: Vec<ShardReply> = Vec::with_capacity(expected);
        for reply in failed {
            if let Some(slot) = legs.iter_mut().find(|(s, _)| *s == reply.shard) {
                if let Some(leg) = slot.1.take() {
                    leg.finish();
                }
            }
            replies.push(reply);
        }
        let mut timed_out: Option<u32> = None;
        while replies.len() < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(reply) => {
                    // Close this leg's span now so its duration is the
                    // true dispatch→reply wall time.
                    if let Some(slot) = legs.iter_mut().find(|(s, _)| *s == reply.shard) {
                        if let Some(leg) = slot.1.take() {
                            leg.finish();
                        }
                    }
                    replies.push(reply);
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    // Deterministic victim: the smallest shard id that
                    // has not replied.
                    timed_out = legs
                        .iter()
                        .filter(|(_, leg)| leg.is_some())
                        .map(|(s, _)| *s)
                        .min();
                    break;
                }
            }
        }
        for (_, leg) in legs {
            if let Some(leg) = leg {
                leg.finish();
            }
        }
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        self.metrics.gather_ms.record(elapsed_ms);
        if let Some(shard) = timed_out {
            self.metrics.shard_failures.inc();
            if let Some(c) = self.metrics.shard_errors.get(shard as usize) {
                c.inc();
            }
            root.finish();
            return Err(RouterError::ShardUnavailable {
                shard,
                addr: self.map.addr(shard).unwrap_or("?").to_owned(),
                retry_after_ms: DEFAULT_RETRY_HINT_MS,
                detail: format!(
                    "no reply within the {} ms gather deadline",
                    self.config.gather_timeout.as_millis()
                ),
            });
        }
        // Deterministic merge and failure order: ascending shard id.
        replies.sort_by_key(|r| r.shard);
        let mut total_retries = 0u64;
        for r in &replies {
            total_retries = total_retries.saturating_add(u64::from(r.retries));
        }
        if total_retries > 0 {
            self.metrics.retries.add(total_retries);
        }
        if let Some(failed) = replies.iter().find(|r| r.outcome.is_err()) {
            self.metrics.shard_failures.inc();
            for r in &replies {
                if r.outcome.is_err() {
                    if let Some(c) = self.metrics.shard_errors.get(r.shard as usize) {
                        c.inc();
                    }
                }
            }
            let shard = failed.shard;
            let addr = self.map.addr(shard).unwrap_or("?").to_owned();
            let err = match &failed.outcome {
                Err(f) if !f.retryable => RouterError::ShardFatal {
                    shard,
                    addr,
                    detail: f.detail.clone(),
                },
                Err(f) => RouterError::ShardUnavailable {
                    shard,
                    addr,
                    retry_after_ms: f.retry_after_ms.max(DEFAULT_RETRY_HINT_MS),
                    detail: f.detail.clone(),
                },
                Ok(_) => RouterError::ShardUnavailable {
                    shard,
                    addr,
                    retry_after_ms: DEFAULT_RETRY_HINT_MS,
                    detail: "unreachable: find() matched an Err outcome".to_owned(),
                },
            };
            root.finish();
            return Err(err);
        }
        let mut merged = RecordBatch::new();
        let mut sim_ms = 0.0f64;
        let mut makespan_ms = 0.0f64;
        let mut partitions_scanned = 0usize;
        let mut units_skipped = 0usize;
        let mut bytes_skipped = 0u64;
        let mut shards = Vec::with_capacity(replies.len());
        for reply in &replies {
            if let Ok(r) = &reply.outcome {
                for i in 0..r.records.len() {
                    merged.push(r.records.get(i));
                }
                sim_ms += r.sim_ms;
                makespan_ms = makespan_ms.max(r.makespan_ms);
                partitions_scanned =
                    partitions_scanned.saturating_add(r.partitions_scanned as usize);
                units_skipped =
                    units_skipped.saturating_add(usize::try_from(r.units_skipped).unwrap_or(0));
                bytes_skipped = bytes_skipped.saturating_add(r.bytes_skipped);
                shards.push(ShardLeg {
                    shard: reply.shard,
                    replica: r.replica,
                    records: r.records.len(),
                    sim_ms: r.sim_ms,
                    units_skipped: r.units_skipped,
                    bytes_skipped: r.bytes_skipped,
                    retries: reply.retries,
                });
            }
        }
        // Canonical order: shards partition the records, so sorting
        // the concatenation reproduces a single store's output
        // bit-for-bit.
        merged.sort_by_oid_time();
        root.note(names::RECORDS, merged.len() as u64);
        root.set_sim_ms(sim_ms);
        root.finish();
        Ok(DistributedQueryResult {
            records: merged,
            sim_ms,
            makespan_ms,
            partitions_scanned,
            units_skipped,
            bytes_skipped,
            fanout,
            shards,
        })
    }

    /// Aggregates the coordinator's own instruments with every shard's
    /// `Stats` document into one JSON view: `shard_map`, router
    /// `metrics`, summed `pruning` counters, per-shard docs under
    /// `shards`, and a pre-rendered `text` table.
    #[must_use]
    pub fn stats_json(&self, band: Option<DriftBand>) -> String {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut expected = 0usize;
        for shard in 0..self.map.len() {
            let job = Job::Stats {
                band,
                reply: tx.clone(),
            };
            if self.pool.submit(shard, job).is_ok() {
                expected += 1;
            }
        }
        let deadline = Instant::now() + self.config.gather_timeout;
        let mut docs: Vec<(u32, Result<String, String>)> = Vec::with_capacity(expected);
        while docs.len() < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok((shard, outcome)) => {
                    docs.push((shard, outcome.map_err(|f| f.detail)));
                }
                Err(_) => break,
            }
        }
        docs.sort_by_key(|(shard, _)| *shard);
        let mut units_skipped = 0u64;
        let mut bytes_skipped = 0u64;
        let mut shard_docs = Vec::with_capacity(docs.len());
        let mut text = String::new();
        let snapshot = self.registry.snapshot();
        if !blot_obs::enabled() {
            text.push_str("metrics are compiled out (blot-obs `off` feature)\n");
        }
        text.push_str(snapshot.render_text().trim_end());
        text.push_str("\n\nshards:\n");
        for (shard, outcome) in &docs {
            let addr = self.map.addr(*shard).unwrap_or("?");
            match outcome {
                Ok(doc) => {
                    let parsed = Json::parse(doc).unwrap_or_else(|_| Json::Obj(Vec::new()));
                    let pruning = parsed.get("pruning");
                    let u = pruning
                        .and_then(|p| p.get("units_skipped"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    let b = pruning
                        .and_then(|p| p.get("bytes_skipped"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    units_skipped = units_skipped.saturating_add(u);
                    bytes_skipped = bytes_skipped.saturating_add(b);
                    text.push_str(&format!(
                        "  shard {shard} {addr}: ok ({u} units / {b} bytes pruned)\n"
                    ));
                    shard_docs.push(Json::obj([
                        ("shard", Json::Num(f64::from(*shard))),
                        ("addr", Json::Str(addr.to_owned())),
                        ("ok", Json::Bool(true)),
                        ("stats", parsed),
                    ]));
                }
                Err(detail) => {
                    text.push_str(&format!("  shard {shard} {addr}: UNAVAILABLE ({detail})\n"));
                    shard_docs.push(Json::obj([
                        ("shard", Json::Num(f64::from(*shard))),
                        ("addr", Json::Str(addr.to_owned())),
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str(detail.clone())),
                    ]));
                }
            }
        }
        let metrics = Json::parse(&snapshot.to_json()).unwrap_or_else(|_| Json::Obj(Vec::new()));
        #[allow(clippy::cast_precision_loss)]
        let doc = Json::obj([
            ("enabled", Json::Bool(blot_obs::enabled())),
            ("coordinator", Json::Bool(true)),
            ("shard_map", self.map.to_json()),
            ("metrics", metrics),
            (
                "pruning",
                Json::obj([
                    ("units_skipped", Json::Num(units_skipped as f64)),
                    ("bytes_skipped", Json::Num(bytes_skipped as f64)),
                ]),
            ),
            ("shards", Json::Arr(shard_docs)),
            ("text", Json::Str(text)),
        ]);
        doc.to_string()
    }
}
