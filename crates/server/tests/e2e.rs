//! Loopback end-to-end tests: a real TCP server on port 0, real
//! clients, asserting remote results are bit-identical to in-process
//! ones, overload is shed with `Overloaded` (never a hang or a silent
//! drop), and graceful shutdown drains in-flight work.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_precision_loss
)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use blot_core::prelude::*;
use blot_obs::{names, SpanContext};
use blot_server::client::{Client, ClientConfig};
use blot_server::server::{Server, ServerConfig};
use blot_server::wire::{self, ErrorCode, Response};
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;

type TestStore = BlotStore<MemBackend>;

fn build_store() -> (TestStore, RecordBatch) {
    let mut config = FleetConfig::small();
    config.num_taxis = 40;
    config.records_per_taxi = 120;
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 23);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    (store, data)
}

fn probe_queries(universe: &Cuboid, n: usize) -> Vec<Cuboid> {
    (0..n)
        .map(|k| {
            let f = 1.5 + k as f64;
            Cuboid::from_centroid(
                universe.centroid(),
                QuerySize::new(
                    universe.extent(0) / f,
                    universe.extent(1) / f,
                    universe.extent(2) / f,
                ),
            )
        })
        .collect()
}

#[test]
fn concurrent_remote_queries_are_bit_identical_to_in_process() {
    let (store, _data) = build_store();
    let store = Arc::new(store);
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let universe = store.universe();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.ping().unwrap();
                for q in probe_queries(&universe, 8 + c) {
                    let remote = client.query(&q).unwrap();
                    let local = store.query(&q).unwrap();
                    assert_eq!(
                        remote.records, local.records,
                        "remote records must be bit-identical"
                    );
                    assert_eq!(remote.replica, local.replica);
                    assert_eq!(remote.partitions_scanned as usize, local.partitions_scanned);
                    assert!(remote.failed_over.is_empty());
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.threads_joined, "service threads must join");
    assert!(report.pool_drained, "scan pool must drain");
    assert!(report.snapshot.counter("server.requests").unwrap_or(0) > 0);
}

#[test]
fn burst_over_queue_depth_is_shed_with_overloaded() {
    let (store, _) = build_store();
    let store = Arc::new(store);
    let config = ServerConfig {
        queue_depth: 2,
        // A long linger holds admitted queries in the queue, making the
        // overload window deterministic for the burst below.
        batch_linger: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let q = probe_queries(&store.universe(), 1)[0];

    let burst: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                // Single shot, no retry: each attempt must get *some*
                // structured answer within the timeout.
                client.query_once(&q).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<_> = burst.into_iter().map(|h| h.join().unwrap()).collect();

    let succeeded = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
    assert_eq!(succeeded + shed.len(), 8, "every request must be answered");
    assert!(
        !shed.is_empty(),
        "a burst of 8 against queue depth 2 must shed at least one query"
    );
    for e in &shed {
        assert_eq!(e.code, ErrorCode::Overloaded);
        assert!(e.retry_after_ms > 0, "shed replies must carry a retry hint");
    }

    let report = server.shutdown(Duration::from_secs(10));
    let shed_count = report.snapshot.counter("server.shed").unwrap_or(0);
    assert!(shed_count >= shed.len() as u64);
}

#[test]
fn client_retry_with_backoff_survives_overload() {
    let (store, _) = build_store();
    let store = Arc::new(store);
    let config = ServerConfig {
        queue_depth: 1,
        batch_linger: Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let q = probe_queries(&store.universe(), 1)[0];

    // Occupy the queue: this query lingers ~250 ms before its batch.
    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            client.query(&q).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(60));
    // The retrying client is shed at least once, then admitted.
    let mut client = Client::connect_with(
        &addr,
        ClientConfig {
            max_retries: 20,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let result = client.query(&q).unwrap();
    assert!(!result.records.is_empty());
    assert!(
        client.retries() > 0,
        "the second client must have been shed and retried"
    );
    occupant.join().unwrap();
    let _ = server.shutdown(Duration::from_secs(10));
}

#[test]
fn graceful_shutdown_answers_in_flight_queries() {
    let (store, _) = build_store();
    let store = Arc::new(store);
    let config = ServerConfig {
        batch_linger: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let universe = store.universe();

    // Four queries land in the admission queue and sit in the linger
    // window when shutdown begins; all must still be answered.
    let in_flight: Vec<_> = probe_queries(&universe, 4)
        .into_iter()
        .map(|q| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.query(&q).map(|r| r.records.len()).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(80));
    let report = server.shutdown(Duration::from_secs(10));
    for h in in_flight {
        let n = h.join().unwrap();
        assert!(n > 0, "in-flight queries must be answered during drain");
    }
    assert!(report.threads_joined);
    assert!(report.pool_drained);

    // After shutdown the port no longer answers.
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn stats_remote_reply_matches_local_snapshot_shape() {
    let (store, _) = build_store();
    let store = Arc::new(store);
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let q = probe_queries(&store.universe(), 1)[0];
    let _ = client.query(&q).unwrap();

    let json = client.stats(None).unwrap();
    let doc = blot_json::Json::parse(&json).unwrap();
    assert_eq!(
        doc.get("enabled").and_then(blot_json::Json::as_bool),
        Some(blot_obs::enabled())
    );
    let metrics = doc.get("metrics").unwrap();
    if blot_obs::enabled() {
        let counters = metrics.get("counters").unwrap();
        assert!(counters.get("server.requests").is_some());
        assert!(
            counters.get("store.queries").is_some() || {
                // Store counter names are the store's concern; just require
                // a non-empty counter table alongside the server's.
                matches!(counters, blot_json::Json::Obj(pairs) if !pairs.is_empty())
            }
        );
    }
    assert!(doc.get("drift").is_some());
    let text = doc.get("text").and_then(blot_json::Json::as_str).unwrap();
    assert!(text.contains("cost-model drift"));
    let _ = server.shutdown(Duration::from_secs(10));
}

#[test]
fn client_trace_context_round_trips_into_the_server_flight_recorder() {
    if !blot_obs::enabled() {
        return; // `off` build: spans are ZSTs, nothing to assert.
    }
    let (store, _) = build_store();
    let store = Arc::new(store);
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let q = probe_queries(&store.universe(), 1)[0];

    // The client opens a trace and ships its context with the query.
    let ctx = SpanContext::fresh();
    let remote = client.query_traced(&q, Some(ctx)).unwrap();
    assert!(!remote.records.is_empty());
    assert!(remote.admission_ms >= 0.0);
    assert!(remote.batch_ms >= 0.0);
    assert!(
        remote.store_ms > 0.0,
        "a served query must report store time"
    );

    // Root replies are sent only after `server.request` is finished, so
    // the whole tree is in the recorder by now. Every stage of the
    // request must appear under the client's trace id, parented inside
    // the trace (the wire context is the only out-of-snapshot parent).
    let records = store.recorder().snapshot();
    let of_trace: Vec<_> = records.iter().filter(|r| r.trace == ctx.trace).collect();
    for name in [
        names::SERVER_REQUEST,
        names::SERVER_ADMISSION,
        names::SERVER_BATCH,
        names::QUERY,
        names::ROUTE,
        names::MERGE,
        names::SCAN_UNIT,
        names::UNIT_PRUNE,
        names::UNIT_DECODE,
    ] {
        assert!(
            of_trace.iter().any(|r| r.name == name),
            "span {name} missing from the client's trace"
        );
    }
    let request = of_trace
        .iter()
        .find(|r| r.name == names::SERVER_REQUEST)
        .unwrap();
    assert_eq!(request.parent, Some(ctx.span));
    let spans: Vec<_> = of_trace.iter().map(|r| r.span).collect();
    for rec in &of_trace {
        let parent = rec.parent.expect("every server span has a parent");
        assert!(
            parent == ctx.span || spans.contains(&parent),
            "span {} parented outside its own trace",
            rec.name
        );
    }

    // The wire `Trace` request exports the same tree as JSON.
    let json = client.trace(0.0, 0).unwrap();
    let doc = blot_json::Json::parse(&json).unwrap();
    assert!(matches!(&doc, blot_json::Json::Arr(items) if !items.is_empty()));
    assert!(json.contains(&ctx.trace.to_string()));
    // A slow-threshold far above any span filters everything out.
    let none = client.trace(1e12, 0).unwrap();
    assert_eq!(none, "[]");

    let _ = server.shutdown(Duration::from_secs(10));
}

#[test]
fn interleaved_traced_queries_never_cross_contaminate_span_trees() {
    if !blot_obs::enabled() {
        return;
    }
    let (store, _) = build_store();
    let store = Arc::new(store);
    let config = ServerConfig {
        // A linger window wide enough that concurrent queries coalesce
        // into shared batch rounds — the cross-contamination hazard.
        batch_linger: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let universe = store.universe();

    let contexts: Vec<SpanContext> = (0..4).map(|_| SpanContext::fresh()).collect();
    let workers: Vec<_> = contexts
        .iter()
        .enumerate()
        .map(|(i, &ctx)| {
            let addr = addr.clone();
            let q = probe_queries(&universe, 4)[i];
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.query_traced(&q, Some(ctx)).unwrap()
            })
        })
        .collect();
    for w in workers {
        assert!(!w.join().unwrap().records.is_empty());
    }

    let records = store.recorder().snapshot();
    for ctx in &contexts {
        let of_trace: Vec<_> = records.iter().filter(|r| r.trace == ctx.trace).collect();
        assert!(
            of_trace.iter().any(|r| r.name == names::QUERY),
            "each trace keeps its own store.query root"
        );
        assert!(
            of_trace.iter().any(|r| r.name == names::SCAN_UNIT),
            "each trace keeps its own scan units"
        );
        // No span of this trace may be parented under another client's
        // trace: parents resolve within the trace or to its wire root.
        let spans: Vec<_> = of_trace.iter().map(|r| r.span).collect();
        for rec in &of_trace {
            if let Some(parent) = rec.parent {
                assert!(
                    parent == ctx.span || spans.contains(&parent),
                    "span {} of one trace parented under another",
                    rec.name
                );
            }
        }
    }

    let _ = server.shutdown(Duration::from_secs(10));
}

#[test]
fn malformed_frames_get_structured_errors_not_dropped_connections() {
    let (store, _) = build_store();
    let server = Server::start(Arc::new(store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Well-framed but bogus payload: connection must stay open.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let bad = wire::encode_frame(wire::kind::RANGE_QUERY, &[0xAB; 10]);
        stream.write_all(&bad).unwrap();
        let frame = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&frame).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
            other => panic!("expected Error, got {other:?}"),
        }
        // Same connection still serves a valid request.
        let (kind, payload) = blot_server::wire::Request::Ping.encode();
        wire::write_frame(&mut stream, kind, &payload).unwrap();
        let frame = wire::read_frame(&mut stream).unwrap();
        assert!(matches!(Response::decode(&frame).unwrap(), Response::Pong));
    }

    // Broken framing (bad magic): a structured reply arrives before the
    // connection closes.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"GARBAGE-NOT-A-FRAME!").unwrap();
        let frame = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&frame).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
            other => panic!("expected Error, got {other:?}"),
        }
        // The server closes after a framing fault; the read drains to
        // EOF rather than hanging.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }
}
