//! A blocking client for the BLOT wire protocol.
//!
//! One [`Client`] owns one TCP connection, reconnecting once per call
//! if the transport drops. [`Client::query`] retries `Overloaded`
//! replies with capped exponential backoff, honouring the server's
//! retry-after hint — the behaviour both `blot query --remote` and the
//! load generator want. [`Client::query_once`] exposes the raw
//! single-shot outcome for overload tests and latency measurement.

use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

use blot_core::obs::DriftBand;
use blot_geo::Cuboid;
use blot_obs::SpanContext;

use crate::wire::{
    self, ErrorCode, Frame, FrameError, RemoteQueryResult, Request, Response, TraceFilter,
    WireError, WireQuery,
};

/// Client-side tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-read/write transport timeout.
    pub io_timeout: Duration,
    /// Retry attempts for an `Overloaded` query before giving up.
    pub max_retries: u32,
    /// Backoff ceiling between retries.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_secs(10),
            max_retries: 8,
            max_backoff: Duration::from_millis(2000),
        }
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's bytes did not parse as a frame.
    Frame(FrameError),
    /// The server answered with a structured error.
    Server(WireError),
    /// The server answered with the wrong reply kind.
    Protocol {
        /// What the client was waiting for.
        expected: &'static str,
    },
    /// Every retry of an `Overloaded` query was shed.
    Exhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Frame(e) => write!(f, "protocol error: {e}"),
            Self::Server(e) => write!(f, "server error: {e}"),
            Self::Protocol { expected } => {
                write!(f, "unexpected reply kind (wanted {expected})")
            }
            Self::Exhausted { attempts } => {
                write!(f, "server overloaded after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => Self::Io(io),
            other => Self::Frame(other),
        }
    }
}

const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<ClientError>()
};

/// How a [`Client`] should react to a structured server error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Transient overload: wait out the server's retry-after hint (with
    /// backoff) and try again.
    RetryAfterHint,
    /// The cached connection is stale (the server reaped it as idle):
    /// reconnect and retry immediately — queries are read-only, so a
    /// repeat is safe.
    Reconnect,
    /// Permanent for this request — surface to the caller.
    Fatal,
}

/// The client-side disposition of every wire error code.
///
/// Exhaustive on purpose: adding an `ErrorCode` variant without
/// deciding its client behaviour fails to compile here, and
/// `cargo xtask lint` (rule `wire-registry`) checks the variant is
/// handled and test-covered.
#[must_use]
pub fn disposition(code: ErrorCode) -> Disposition {
    match code {
        // A coordinator's shard failure is transient from the client's
        // seat: the shard may restart or shed load, and the coordinator
        // forwards the shard's own retry hint.
        ErrorCode::Overloaded | ErrorCode::ShardUnavailable => Disposition::RetryAfterHint,
        ErrorCode::IdleTimeout => Disposition::Reconnect,
        ErrorCode::Malformed
        | ErrorCode::BadVersion
        | ErrorCode::ShuttingDown
        | ErrorCode::Storage
        | ErrorCode::NoReplicas
        | ErrorCode::NoSuchReplica
        | ErrorCode::Internal => Disposition::Fatal,
    }
}

/// A blocking BLOT client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
    config: ClientConfig,
    /// Cumulative `Overloaded` retries performed by [`Client::query`].
    retries: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7407"`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tunables.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Self, ClientError> {
        let mut client = Self {
            addr: addr.to_owned(),
            stream: None,
            config,
            retries: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            let _ = stream.set_nodelay(true);
            // The timeouts are load-bearing: without them a wedged server
            // would hang `query` forever, so failing to arm them is a
            // connection-setup failure like `connect` itself.
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            self.stream = Some(stream);
        }
        self.stream.as_mut().ok_or(ClientError::Protocol {
            expected: "connection",
        })
    }

    /// One request/reply exchange; a transport error drops the cached
    /// connection so the next call reconnects.
    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        let (kind, payload) = request.encode();
        let result = (|| {
            let stream = self.ensure_connected()?;
            wire::write_frame(stream, kind, &payload)?;
            let frame: Frame = wire::read_frame(stream)?;
            Ok(Response::decode(&frame)?)
        })();
        if matches!(result, Err(ClientError::Io(_))) {
            self.stream = None;
        }
        result
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; [`ClientError::Server`] if the server
    /// answered with an error frame.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol { expected: "Pong" }),
        }
    }

    /// One query attempt, no retry: `Ok(Ok(result))`, or
    /// `Ok(Err(wire_error))` when the server answered with a structured
    /// error (e.g. `Overloaded`).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors only; server-side errors land in the
    /// inner `Result`.
    pub fn query_once(
        &mut self,
        range: &Cuboid,
    ) -> Result<Result<RemoteQueryResult, WireError>, ClientError> {
        self.query_once_traced(range, None)
    }

    /// Like [`Client::query_once`], but ships `ctx` as the query's wire
    /// trace context so the server parents its span tree under the
    /// client's trace.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors only; server-side errors land in the
    /// inner `Result`.
    pub fn query_once_traced(
        &mut self,
        range: &Cuboid,
        ctx: Option<SpanContext>,
    ) -> Result<Result<RemoteQueryResult, WireError>, ClientError> {
        let wire_query = WireQuery { range: *range, ctx };
        match self.exchange(&Request::RangeQuery(wire_query))? {
            Response::QueryOk(r) => Ok(Ok(*r)),
            Response::Error(e) => Ok(Err(e)),
            _ => Err(ClientError::Protocol {
                expected: "QueryOk",
            }),
        }
    }

    /// Executes a range query, retrying `Overloaded` replies with
    /// backoff (the server's retry-after hint, doubled per attempt, and
    /// capped by the config ceiling).
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when every attempt was shed;
    /// [`ClientError::Server`] for non-overload server errors;
    /// transport/protocol errors as usual.
    pub fn query(&mut self, range: &Cuboid) -> Result<RemoteQueryResult, ClientError> {
        self.query_traced(range, None)
    }

    /// Like [`Client::query`], but propagates `ctx` over the wire so
    /// the server joins the client's trace.
    ///
    /// # Errors
    ///
    /// Same as [`Client::query`].
    pub fn query_traced(
        &mut self,
        range: &Cuboid,
        ctx: Option<SpanContext>,
    ) -> Result<RemoteQueryResult, ClientError> {
        let attempts = self.config.max_retries.saturating_add(1);
        let mut backoff = Duration::from_millis(10);
        for attempt in 0..attempts {
            match self.query_once_traced(range, ctx)? {
                Ok(result) => return Ok(result),
                Err(e) => match disposition(e.code) {
                    Disposition::RetryAfterHint => {
                        self.retries += 1;
                        let hinted = Duration::from_millis(u64::from(e.retry_after_ms));
                        let wait = hinted.max(backoff).min(self.config.max_backoff);
                        if attempt + 1 < attempts {
                            std::thread::sleep(wait);
                        }
                        backoff = backoff.saturating_mul(2);
                    }
                    Disposition::Reconnect => {
                        self.retries += 1;
                        self.stream = None;
                    }
                    Disposition::Fatal => return Err(ClientError::Server(e)),
                },
            }
        }
        Err(ClientError::Exhausted { attempts })
    }

    /// Fetches the server's stats snapshot as raw JSON.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; [`ClientError::Server`] for error
    /// replies.
    pub fn stats(&mut self, band: Option<DriftBand>) -> Result<String, ClientError> {
        match self.exchange(&Request::Stats(band))? {
            Response::StatsOk(json) => Ok(json),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol {
                expected: "StatsOk",
            }),
        }
    }

    /// Fetches the server's flight-recorder snapshot as raw span JSON,
    /// keeping only traces with a span of at least `slow_ms` (0 keeps
    /// all) and at most the `last` most recent traces (0 keeps all).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; [`ClientError::Server`] for error
    /// replies.
    pub fn trace(&mut self, slow_ms: f64, last: u32) -> Result<String, ClientError> {
        match self.exchange(&Request::Trace(TraceFilter { slow_ms, last }))? {
            Response::TraceOk(json) => Ok(json),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Protocol {
                expected: "TraceOk",
            }),
        }
    }

    /// Cumulative `Overloaded` retries performed by [`Client::query`]
    /// over this client's lifetime.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn every_error_code_has_a_disposition() {
        assert_eq!(
            disposition(ErrorCode::Overloaded),
            Disposition::RetryAfterHint
        );
        assert_eq!(
            disposition(ErrorCode::ShardUnavailable),
            Disposition::RetryAfterHint
        );
        assert_eq!(disposition(ErrorCode::IdleTimeout), Disposition::Reconnect);
        for fatal in [
            ErrorCode::Malformed,
            ErrorCode::BadVersion,
            ErrorCode::ShuttingDown,
            ErrorCode::Storage,
            ErrorCode::NoReplicas,
            ErrorCode::NoSuchReplica,
            ErrorCode::Internal,
        ] {
            assert_eq!(disposition(fatal), Disposition::Fatal);
        }
    }
}
