//! Server lifecycle: bind, spawn, serve, drain, report.

use std::fmt;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blot_core::prelude::*;
use blot_obs::{MetricsRegistry, ServerMetrics, Snapshot};

use crate::batch::{run_batcher, AdmissionQueue};
use crate::conn::{accept_loop, handler_loop, spawn_named, ConnContext, ConnQueue};
use crate::shutdown::ShutdownFlag;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously open client connections; further
    /// connections get an `Overloaded` reply at accept time.
    pub max_conns: usize,
    /// Connection-handler threads (each serves one connection at a
    /// time).
    pub handlers: usize,
    /// Admission-queue capacity: queries waiting for the batcher.
    pub queue_depth: usize,
    /// Most queries coalesced into one pooled round.
    pub max_batch: usize,
    /// How long the batcher lingers for stragglers once a query is
    /// queued.
    pub batch_linger: Duration,
    /// Close connections idle longer than this.
    pub idle_timeout: Duration,
    /// Per-read/write transport timeout once a frame is under way.
    pub io_timeout: Duration,
    /// How long a connection handler waits for its query's batch.
    pub request_timeout: Duration,
    /// Slow-query threshold in simulated milliseconds; queries whose
    /// measured cost exceeds it land in the store's slow-query log,
    /// which the batcher drains to stderr. `0.0` disables the log.
    pub slow_query_ms: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_conns: 64,
            handlers: 8,
            queue_depth: 256,
            max_batch: 64,
            batch_linger: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(30),
            slow_query_ms: 0.0,
        }
    }
}

/// Failure to start a server.
#[derive(Debug)]
pub enum ServerError {
    /// The listen address could not be bound.
    Bind {
        /// Address requested.
        addr: String,
        /// OS error.
        source: std::io::Error,
    },
    /// A service thread could not be spawned.
    Spawn {
        /// Thread role.
        what: &'static str,
        /// OS error.
        source: std::io::Error,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            Self::Spawn { what, source } => write!(f, "cannot spawn {what} thread: {source}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Bind { source, .. } | Self::Spawn { source, .. } => Some(source),
        }
    }
}

const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<ServerError>()
};

/// What graceful shutdown accomplished.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Every service thread (accept, handlers, batcher) joined within
    /// the timeout.
    pub threads_joined: bool,
    /// The scan-executor pool drained its queue and joined its workers.
    pub pool_drained: bool,
    /// Final metrics snapshot, taken after the drain ("flush metrics").
    pub snapshot: Snapshot,
}

/// A running BLOT server.
///
/// Dropping a `Server` without calling [`shutdown`](Self::shutdown)
/// trips the shutdown flag and closes the queues, but does not block
/// joining threads; call `shutdown` for an orderly drain.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    flag: ShutdownFlag,
    threads: Vec<JoinHandle<()>>,
    queue: Arc<AdmissionQueue>,
    connq: Arc<ConnQueue>,
    registry: MetricsRegistry,
    executor: Arc<blot_storage::ScanExecutor>,
}

impl Server {
    /// Binds `addr` and starts serving `service` in the background.
    ///
    /// # Errors
    ///
    /// [`ServerError::Bind`] if the address cannot be bound,
    /// [`ServerError::Spawn`] if a service thread cannot start.
    pub fn start<S: QueryService + ?Sized + 'static>(
        service: Arc<S>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServerError::Bind {
            addr: addr.to_owned(),
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServerError::Bind {
            addr: addr.to_owned(),
            source,
        })?;
        let registry = service.metrics_registry();
        let metrics = ServerMetrics::register(&registry);
        let executor = service.executor();
        service.set_slow_query_ms(config.slow_query_ms);
        let flag = ShutdownFlag::new();
        let queue = AdmissionQueue::new(
            config.queue_depth,
            config.max_batch,
            config.batch_linger,
            metrics.clone(),
        );
        let connq = ConnQueue::new();
        let ctx = ConnContext {
            service,
            queue: Arc::clone(&queue),
            metrics,
            flag: flag.clone(),
            config: config.clone(),
            active: Arc::new(AtomicUsize::new(0)),
        };

        let mut threads = Vec::with_capacity(config.handlers + 2);
        let spawn_err = |what, source| ServerError::Spawn { what, source };
        {
            let ctx = ctx.clone();
            let queue = Arc::clone(&queue);
            threads.push(
                spawn_named("batcher", move || run_batcher(ctx.service.as_ref(), &queue))
                    .map_err(|e| spawn_err("batcher", e))?,
            );
        }
        for i in 0..config.handlers.max(1) {
            let ctx = ctx.clone();
            let connq = Arc::clone(&connq);
            threads.push(
                spawn_named(&format!("handler-{i}"), move || handler_loop(&connq, &ctx))
                    .map_err(|e| spawn_err("handler", e))?,
            );
        }
        {
            let connq = Arc::clone(&connq);
            threads.push(
                spawn_named("accept", move || accept_loop(&listener, &connq, &ctx))
                    .map_err(|e| spawn_err("accept", e))?,
            );
        }

        Ok(Self {
            local_addr,
            flag,
            threads,
            queue,
            connq,
            registry,
            executor,
        })
    }

    /// The bound address (resolves port 0 binds for tests).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clone of the shutdown latch; trigger it (from a signal
    /// watcher, another thread, a test) to begin shutdown.
    #[must_use]
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.flag.clone()
    }

    /// The registry serving-layer and store instruments live in.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// join service threads, drain the scan pool, flush metrics.
    ///
    /// Already-admitted queries are answered; new ones get
    /// `ShuttingDown`. The per-phase deadline is `timeout` overall.
    #[must_use]
    pub fn shutdown(mut self, timeout: Duration) -> ShutdownReport {
        let deadline = Instant::now() + timeout;
        // 1. Stop accepting and admitting. The batcher drains what is
        //    already queued before exiting; handlers answer in-flight
        //    requests, then see the flag.
        self.flag.trigger();
        self.queue.close();
        self.connq.close();
        // 2. Join service threads (accept first in the vec order does
        //    not matter; is_finished polling honours one deadline).
        let poll = Duration::from_millis(5);
        let mut threads_joined = true;
        for handle in std::mem::take(&mut self.threads) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(poll);
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                threads_joined = false;
            }
        }
        // 3. Drain and join the scan pool.
        let remaining = deadline.saturating_duration_since(Instant::now());
        let pool_drained = self.executor.shutdown(remaining.max(poll));
        // 4. Flush: final snapshot after all recording stopped.
        let snapshot = self.registry.snapshot();
        ShutdownReport {
            threads_joined,
            pool_drained,
            snapshot,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.flag.trigger();
        self.queue.close();
        self.connq.close();
        // Threads are detached if `shutdown` was not called; they exit
        // on their next poll tick.
    }
}
