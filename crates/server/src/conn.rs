//! The accept loop and connection handlers.
//!
//! This file is the only place in the workspace's serving layer that
//! creates OS threads (the `thread-discipline` audit waives exactly
//! these sites): one accept-loop thread, a fixed pool of connection
//! handlers, and the batcher. All *scan* parallelism still runs on the
//! shared [`blot_storage::ScanExecutor`], reached through
//! [`QueryService::query_batch`].
//!
//! Connection lifecycle: the accept loop admits a socket if the open-
//! connection count is under `max_conns` (otherwise it replies
//! `Overloaded` and closes — never a silent drop), then parks it on
//! the [`ConnQueue`] until a handler picks it up. Handlers poll one
//! byte at a time between frames so shutdown and idle deadlines are
//! observed within a tick (~150 ms) even on a silent connection.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blot_core::prelude::*;
use blot_obs::{names, ServerMetrics};
use blot_storage::sync::Mutex;

use crate::batch::{AdmissionQueue, SubmitError};
use crate::server::ServerConfig;
use crate::shutdown::ShutdownFlag;
use crate::stats;
use crate::wire::{
    self, ErrorCode, Frame, FrameError, RemoteQueryResult, Request, Response, WireError,
};

/// How often blocked loops (accept, frame poll) re-check the shutdown
/// flag and deadlines.
const POLL_TICK: Duration = Duration::from_millis(150);
/// Accept-loop poll interval while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Spawns a named service thread. Centralised here so the
/// `thread-discipline` waiver covers every serving-layer spawn site.
///
/// # Errors
///
/// Propagates the OS error if the thread cannot be created.
pub(crate) fn spawn_named(
    name: &str,
    f: impl FnOnce() + Send + 'static,
) -> std::io::Result<JoinHandle<()>> {
    // audit: allow(thread-discipline, serving-layer accept/handler/batcher threads are long-lived I/O loops, not unit-scan work; scans still run on the shared ScanExecutor)
    std::thread::Builder::new()
        .name(format!("blot-server-{name}"))
        .spawn(f)
}

/// Bounded hand-off of accepted sockets from the accept loop to the
/// handler pool.
#[derive(Debug, Default)]
pub(crate) struct ConnQueue {
    sockets: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl ConnQueue {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn push(&self, stream: TcpStream) {
        self.sockets.lock().push_back(stream);
        self.ready.notify_one();
    }

    /// Blocks until a socket arrives or the queue closes. `None` means
    /// closed and drained: the handler should exit.
    fn pop(&self) -> Option<TcpStream> {
        let mut sockets = self.sockets.lock();
        loop {
            if let Some(stream) = sockets.pop_front() {
                return Some(stream);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(sockets, POLL_TICK)
                .unwrap_or_else(PoisonError::into_inner);
            sockets = guard;
        }
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// Everything a connection thread needs, cheaply clonable.
pub(crate) struct ConnContext<S: ?Sized> {
    pub(crate) service: Arc<S>,
    pub(crate) queue: Arc<AdmissionQueue>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) flag: ShutdownFlag,
    pub(crate) config: ServerConfig,
    /// Open connections (admitted by the accept loop, not yet finished
    /// serving). A plain atomic, not the metrics gauge: with the
    /// `blot-obs` `off` feature gauges read zero, and admission control
    /// must not depend on observability being compiled in.
    pub(crate) active: Arc<AtomicUsize>,
}

impl<S: ?Sized> Clone for ConnContext<S> {
    fn clone(&self) -> Self {
        Self {
            service: Arc::clone(&self.service),
            queue: Arc::clone(&self.queue),
            metrics: self.metrics.clone(),
            flag: self.flag.clone(),
            config: self.config.clone(),
            active: Arc::clone(&self.active),
        }
    }
}

impl<S: ?Sized> std::fmt::Debug for ConnContext<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnContext")
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The accept loop: non-blocking accept polled against the shutdown
/// flag. On shutdown it closes the hand-off queue and returns.
pub(crate) fn accept_loop<S: QueryService + ?Sized>(
    listener: &TcpListener,
    connq: &ConnQueue,
    ctx: &ConnContext<S>,
) {
    // Non-blocking accept is load-bearing: a blocking listener would pin
    // this thread inside `accept()` past the shutdown flag. Refuse to
    // serve rather than refuse to stop.
    if listener.set_nonblocking(true).is_err() {
        connq.close();
        return;
    }
    loop {
        if ctx.flag.is_triggered() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.metrics.accepted.inc();
                if ctx.active.load(Ordering::Acquire) >= ctx.config.max_conns {
                    // At capacity: answer, don't silently drop.
                    ctx.metrics.rejected.inc();
                    reject_overloaded(stream, "connection limit reached");
                    continue;
                }
                ctx.active.fetch_add(1, Ordering::AcqRel);
                connq.push(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // back off a tick and keep serving.
                std::thread::sleep(ACCEPT_TICK);
            }
        }
    }
    connq.close();
}

/// Best-effort `Overloaded` reply to a connection turned away at the
/// accept loop; the socket is closed afterwards either way.
fn reject_overloaded(mut stream: TcpStream, message: &str) {
    // Without the write timeout an unresponsive peer could stall the
    // accept loop for the whole reply; skip the courtesy and just close.
    if stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }
    let (kind, payload) = Response::Error(WireError {
        code: ErrorCode::Overloaded,
        retry_after_ms: 100,
        message: message.to_owned(),
    })
    .encode();
    // audit: allow(result-discipline, courtesy reply on a connection already being turned away — the close that follows is the real signal)
    let _ = wire::write_frame(&mut stream, kind, &payload);
}

/// One handler-pool thread: serve sockets until the queue closes.
pub(crate) fn handler_loop<S: QueryService + ?Sized>(connq: &ConnQueue, ctx: &ConnContext<S>) {
    while let Some(stream) = connq.pop() {
        serve_connection(stream, ctx);
        ctx.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Outcome of polling for the next request frame.
enum Poll {
    Frame(Frame),
    /// Clean EOF from the peer.
    Eof,
    /// Idle deadline passed with no frame started.
    Idle,
    /// Shutdown flag tripped between frames.
    Shutdown,
    /// The frame was malformed at the framing layer (stream cannot be
    /// resynchronised).
    Fault(FrameError),
    /// Transport error.
    Io,
}

/// Waits for the next frame, checking the shutdown flag and the idle
/// deadline every [`POLL_TICK`].
fn poll_frame<S: ?Sized>(stream: &mut TcpStream, ctx: &ConnContext<S>) -> Poll {
    let idle_deadline = Instant::now() + ctx.config.idle_timeout;
    loop {
        if ctx.flag.is_triggered() {
            return Poll::Shutdown;
        }
        // A poll tick that cannot be armed would turn the read below
        // into an unbounded block; treat it like any transport fault.
        if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
            return Poll::Io;
        }
        let mut first = [0_u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return Poll::Eof,
            Ok(_) => {
                // Frame under way: switch to the full I/O timeout for
                // the remainder.
                if stream
                    .set_read_timeout(Some(ctx.config.io_timeout))
                    .is_err()
                {
                    return Poll::Io;
                }
                let [first_byte] = first;
                return match wire::read_frame_rest(stream, first_byte) {
                    Ok(frame) => Poll::Frame(frame),
                    Err(FrameError::Io(_)) => Poll::Io,
                    Err(e) => Poll::Fault(e),
                };
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if Instant::now() >= idle_deadline {
                    return Poll::Idle;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Poll::Io,
        }
    }
}

fn send<S: ?Sized>(stream: &mut TcpStream, ctx: &ConnContext<S>, resp: &Response) -> bool {
    if stream
        .set_write_timeout(Some(ctx.config.io_timeout))
        .is_err()
    {
        return false;
    }
    let (kind, payload) = resp.encode();
    wire::write_frame(stream, kind, &payload).is_ok()
}

fn error_response(code: ErrorCode, retry_after_ms: u32, message: String) -> Response {
    Response::Error(WireError {
        code,
        retry_after_ms,
        message,
    })
}

/// Serves one connection until EOF, idle timeout, fault, or shutdown.
fn serve_connection<S: QueryService + ?Sized>(mut stream: TcpStream, ctx: &ConnContext<S>) {
    let _ = stream.set_nodelay(true);
    ctx.metrics.connections.add(1);
    loop {
        match poll_frame(&mut stream, ctx) {
            Poll::Frame(frame) => {
                let started = Instant::now();
                ctx.metrics.requests.inc();
                let (resp, keep_open) = handle_frame(&frame, ctx);
                if matches!(resp, Response::Error(_)) {
                    ctx.metrics.request_errors.inc();
                }
                let sent = send(&mut stream, ctx, &resp);
                #[allow(clippy::cast_precision_loss)]
                ctx.metrics
                    .request_ms
                    .record(started.elapsed().as_secs_f64() * 1e3);
                if !sent || !keep_open {
                    break;
                }
            }
            Poll::Eof | Poll::Io => break,
            Poll::Idle => {
                let _ = send(
                    &mut stream,
                    ctx,
                    &error_response(ErrorCode::IdleTimeout, 0, "idle timeout".to_owned()),
                );
                break;
            }
            Poll::Shutdown => {
                let _ = send(
                    &mut stream,
                    ctx,
                    &error_response(
                        ErrorCode::ShuttingDown,
                        0,
                        "server shutting down".to_owned(),
                    ),
                );
                break;
            }
            Poll::Fault(e) => {
                // The stream cannot be resynchronised after a framing
                // fault; reply (structured, never a silent drop), then
                // close.
                let code = match e {
                    FrameError::BadVersion { .. } => ErrorCode::BadVersion,
                    _ => ErrorCode::Malformed,
                };
                let _ = send(&mut stream, ctx, &error_response(code, 0, e.to_string()));
                break;
            }
        }
    }
    ctx.metrics.connections.add(-1);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Decodes and executes one well-framed request. Returns the reply and
/// whether the connection stays open.
fn handle_frame<S: QueryService + ?Sized>(frame: &Frame, ctx: &ConnContext<S>) -> (Response, bool) {
    let request = match Request::decode(frame) {
        Ok(r) => r,
        // A payload-level fault is recoverable — the frame boundary
        // held — so the connection stays open.
        Err(e) => return (error_response(ErrorCode::Malformed, 0, e.to_string()), true),
    };
    match request {
        Request::Ping => (Response::Pong, true),
        Request::Stats(band) => {
            // A coordinator service pre-renders its own aggregated
            // document; everything else gets the standard payload.
            let payload = ctx
                .service
                .stats_json(band)
                .unwrap_or_else(|| stats::stats_payload(ctx.service.as_ref(), band));
            (Response::StatsOk(payload), true)
        }
        Request::RangeQuery(q) => {
            // Every remote query runs under a `server.request` root:
            // adopted from the client's wire context when present, a
            // fresh trace otherwise, so `blot trace --remote` sees the
            // full tree either way. (With `blot-obs/off` the spans are
            // ZSTs, `context()` is `None`, and nothing is recorded.)
            let recorder = ctx.service.recorder();
            let root = match q.ctx {
                Some(remote) => recorder.span_under(remote, names::SERVER_REQUEST),
                None => recorder.span(names::SERVER_REQUEST),
            };
            let trace_ctx = root.context();
            // The admission span is finished by the batcher at drain
            // time, so its duration is exactly the queue wait.
            let admission = trace_ctx
                .is_some()
                .then(|| root.child(names::SERVER_ADMISSION));
            let reply = match ctx.queue.submit(q.range, trace_ctx, admission) {
                Err(SubmitError::Overloaded { retry_after_ms }) => (
                    error_response(
                        ErrorCode::Overloaded,
                        retry_after_ms,
                        "admission queue full".to_owned(),
                    ),
                    true,
                ),
                Err(SubmitError::ShuttingDown) => (
                    error_response(
                        ErrorCode::ShuttingDown,
                        0,
                        "server shutting down".to_owned(),
                    ),
                    false,
                ),
                Ok(slot) => match slot.wait(ctx.config.request_timeout) {
                    Some(outcome) => match outcome.result {
                        Ok(result) => (
                            Response::QueryOk(Box::new(RemoteQueryResult {
                                replica: result.replica,
                                sim_ms: result.sim_ms,
                                makespan_ms: result.makespan_ms,
                                partitions_scanned: u32::try_from(result.partitions_scanned)
                                    .unwrap_or(u32::MAX),
                                units_skipped: u64::try_from(result.units_skipped)
                                    .unwrap_or(u64::MAX),
                                bytes_skipped: result.bytes_skipped,
                                admission_ms: outcome.admission_ms,
                                batch_ms: outcome.batch_ms,
                                store_ms: outcome.store_ms,
                                failed_over: result.failed_over,
                                records: result.records,
                            })),
                            true,
                        ),
                        Err(e) => (
                            match e {
                                // A coordinator's shard failure forwards
                                // the failed shard's retry hint.
                                CoreError::ShardUnavailable { retry_after_ms, .. } => {
                                    error_response(
                                        ErrorCode::ShardUnavailable,
                                        retry_after_ms,
                                        e.to_string(),
                                    )
                                }
                                _ => error_response(ErrorCode::from_core(&e), 0, e.to_string()),
                            },
                            true,
                        ),
                    },
                    None => (
                        error_response(
                            ErrorCode::Internal,
                            0,
                            "request timed out in the batcher".to_owned(),
                        ),
                        true,
                    ),
                },
            };
            root.finish();
            reply
        }
        Request::Trace(filter) => {
            let records = ctx.service.recorder().snapshot();
            let records = blot_obs::trace::filter_slow(&records, filter.slow_ms);
            let records = blot_obs::trace::filter_last(
                &records,
                usize::try_from(filter.last).unwrap_or(usize::MAX),
            );
            (
                Response::TraceOk(blot_obs::trace::records_to_json(&records)),
                true,
            )
        }
    }
}
