//! The `Stats` reply payload: one JSON document carrying the metrics
//! snapshot, the cost-model drift report, and a pre-rendered text
//! table, so `blot stats --remote` can show exactly what the local
//! path shows without re-implementing the renderer client-side.

use blot_core::obs::{DriftBand, DriftReport};
use blot_core::prelude::*;
use blot_json::Json;

/// Renders a drift report as JSON (shared by the server's `Stats`
/// reply and the CLI's local `blot stats --json` path).
#[must_use]
pub fn drift_to_json(report: &DriftReport) -> Json {
    #[allow(clippy::cast_precision_loss)]
    let schemes: Vec<Json> = report
        .schemes
        .iter()
        .map(|s| {
            Json::obj([
                ("scheme", Json::Str(s.scheme.metric_label().to_owned())),
                ("samples", Json::Num(s.samples as f64)),
                ("median_ratio", Json::Num(s.median_ratio)),
                ("mean_ratio", Json::Num(s.mean_ratio)),
                ("flagged", Json::Bool(s.flagged)),
            ])
        })
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let band = Json::obj([
        ("lo", Json::Num(report.band.lo)),
        ("hi", Json::Num(report.band.hi)),
        ("min_samples", Json::Num(report.band.min_samples as f64)),
    ]);
    Json::obj([
        ("band", band),
        ("calibrated", Json::Bool(report.is_calibrated())),
        ("schemes", Json::Arr(schemes)),
    ])
}

/// Renders a drift report as the CLI's text table (one line per scheme
/// with samples).
#[must_use]
pub fn drift_to_text(report: &DriftReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cost-model drift (median predicted/actual, band [{}, {}], min {} samples):\n",
        report.band.lo, report.band.hi, report.band.min_samples
    ));
    let mut any = false;
    for row in &report.schemes {
        if row.samples == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {:<12} {:>6} samples  median {:>8.3}  mean {:>8.3}  {}\n",
            row.scheme.metric_label(),
            row.samples,
            row.median_ratio,
            row.mean_ratio,
            if row.flagged { "DRIFTED" } else { "ok" }
        ));
    }
    if !any {
        out.push_str("  (no drift samples)\n");
    }
    out
}

/// Builds the `StatsOk` JSON payload for a service: `enabled` (is the
/// metrics build live), `metrics` (the registry snapshot), `drift`,
/// and `text` (the same information pre-rendered as the local CLI's
/// text output).
#[must_use]
pub fn stats_payload<S: QueryService + ?Sized>(service: &S, band: Option<DriftBand>) -> String {
    let snapshot = service.metrics_registry().snapshot();
    let drift = service.drift_report(band.unwrap_or_default());
    let metrics = Json::parse(&snapshot.to_json()).unwrap_or_else(|_| Json::Obj(Vec::new()));
    // Zone-map pruning effectiveness, surfaced explicitly so
    // `blot stats --remote` shows it without digging in the raw
    // counter dump.
    let units_skipped = snapshot.counter("scan.units_skipped").unwrap_or(0);
    let bytes_skipped = snapshot.counter("scan.bytes_skipped").unwrap_or(0);
    let mut text = String::new();
    if !blot_obs::enabled() {
        text.push_str("metrics are compiled out (blot-obs `off` feature)\n");
    }
    text.push_str(snapshot.render_text().trim_end());
    text.push_str("\n\n");
    text.push_str(&format!(
        "zone-map pruning: {units_skipped} units skipped, {bytes_skipped} bytes never fetched\n\n"
    ));
    text.push_str(&drift_to_text(&drift));
    #[allow(clippy::cast_precision_loss)]
    let pruning = Json::obj([
        ("units_skipped", Json::Num(units_skipped as f64)),
        ("bytes_skipped", Json::Num(bytes_skipped as f64)),
    ]);
    let doc = Json::obj([
        ("enabled", Json::Bool(blot_obs::enabled())),
        ("metrics", metrics),
        ("pruning", pruning),
        ("drift", drift_to_json(&drift)),
        ("text", Json::Str(text)),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;
    use blot_core::obs::DriftReport;

    #[test]
    fn drift_json_and_text_cover_empty_reports() {
        let report = DriftReport::from_samples(
            DriftBand::default(),
            std::iter::empty::<(EncodingScheme, blot_obs::HistogramSnapshot)>(),
        );
        let json = drift_to_json(&report);
        assert_eq!(json.get("calibrated").and_then(Json::as_bool), Some(true));
        assert!(drift_to_text(&report).contains("no drift samples"));
    }
}
