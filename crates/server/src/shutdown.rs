//! Cooperative shutdown signalling.
//!
//! The workspace forbids `unsafe`, so there is no signal handler; the
//! flag is triggered programmatically (CLI stdin watcher, tests,
//! `Server::shutdown`). Every server loop polls it between short
//! blocking operations, so a trigger propagates within one poll tick.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A clonable one-way latch: once triggered, it stays triggered.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    inner: Arc<FlagInner>,
}

#[derive(Debug, Default)]
struct FlagInner {
    triggered: AtomicBool,
    // The mutex guards nothing but the condvar protocol; the bool is
    // the atomic above.
    lock: Mutex<()>,
    changed: Condvar,
}

impl ShutdownFlag {
    /// Creates an untriggered flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the latch and wakes every waiter. Idempotent.
    pub fn trigger(&self) {
        self.inner.triggered.store(true, Ordering::Release);
        let guard = self
            .inner
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        drop(guard);
        self.inner.changed.notify_all();
    }

    /// True once [`trigger`](Self::trigger) ran.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.inner.triggered.load(Ordering::Acquire)
    }

    /// Blocks until the flag trips.
    pub fn wait(&self) {
        let mut guard = self
            .inner
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !self.is_triggered() {
            guard = self
                .inner
                .changed
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        drop(guard);
    }

    /// Blocks until the flag trips or `timeout` elapses; true when it
    /// tripped.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self
            .inner
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !self.is_triggered() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            guard = self
                .inner
                .changed
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        drop(guard);
        true
    }
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;

    #[test]
    fn trigger_is_sticky_and_wakes_waiters() {
        let flag = ShutdownFlag::new();
        assert!(!flag.is_triggered());
        assert!(!flag.wait_timeout(Duration::from_millis(5)));
        let waiter = {
            let flag = flag.clone();
            std::thread::spawn(move || flag.wait())
        };
        flag.trigger();
        flag.trigger(); // idempotent
        assert!(flag.is_triggered());
        waiter.join().unwrap();
        assert!(flag.wait_timeout(Duration::ZERO));
    }
}
