//! Admission control and query micro-batching.
//!
//! Every `RangeQuery` a connection handler decodes goes through the
//! bounded [`AdmissionQueue`]. A full queue sheds the query immediately
//! with [`SubmitError::Overloaded`] (carrying a retry-after hint sized
//! from the most recent batch's wall time) — the queue never grows
//! without bound and the connection never blocks inside `submit`. A
//! single batcher thread drains the queue in FIFO order, groups up to
//! `max_batch` queries, and executes them in **one**
//! [`QueryService::query_batch`] round, so a burst of small queries
//! pays the scan-pool submission overhead once instead of per query.
//!
//! Results travel back to the waiting connection handler through a
//! [`ResponseSlot`] — a one-shot mutex/condvar cell.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::time::{Duration, Instant};

use blot_core::prelude::*;
use blot_obs::{names, ServerMetrics, SpanContext, TraceSpan};
use blot_storage::sync::Mutex;
use blot_storage::StorageError;

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retry after the hint.
    Overloaded {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
    },
    /// The server is draining and admits no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { retry_after_ms } => {
                write!(f, "admission queue full; retry after {retry_after_ms} ms")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<SubmitError>()
};

/// What the batcher hands back for one query: the query's own outcome
/// plus the server-side stage breakdown the wire reply reports.
#[derive(Debug)]
pub struct BatchedOutcome {
    /// The query's result as produced by the store.
    pub result: Result<QueryResult, CoreError>,
    /// Wall time from `submit` to the batcher draining the query.
    pub admission_ms: f64,
    /// Wall time the query spent inside its batch round (drain → fill).
    pub batch_ms: f64,
    /// Wall time of the store's `query_batch_traced` round. Shared by
    /// every query in the same batch.
    pub store_ms: f64,
}

/// A one-shot result cell: the batcher fills it, the connection handler
/// waits on it.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    cell: Mutex<Option<BatchedOutcome>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Stores the outcome and wakes the waiter. A second fill is
    /// ignored (the slot is one-shot).
    pub fn fill(&self, outcome: BatchedOutcome) {
        let mut cell = self.cell.lock();
        if cell.is_none() {
            *cell = Some(outcome);
        }
        drop(cell);
        self.ready.notify_all();
    }

    /// Blocks until the slot is filled or `timeout` elapses; `None`
    /// means the batcher never answered in time.
    #[must_use]
    pub fn wait(&self, timeout: Duration) -> Option<BatchedOutcome> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.cell.lock();
        while cell.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // `storage::sync::Mutex` hands out a std guard, so the
            // condvar composes; recover from poisoning like the lock
            // itself does.
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(cell, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            cell = guard;
        }
        cell.take()
    }
}

struct PendingQuery {
    range: Cuboid,
    /// The connection's `server.request` span context, if the query is
    /// traced; the batcher parents its `server.batch` span under it.
    ctx: Option<SpanContext>,
    /// The `server.admission` span opened at submit time; the batcher
    /// finishes it when it drains the query, so the span's duration is
    /// the queue wait.
    admission: Option<TraceSpan>,
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for PendingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingQuery")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

/// The bounded queue between connection handlers and the batcher.
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: Mutex<VecDeque<PendingQuery>>,
    submitted: Condvar,
    capacity: usize,
    max_batch: usize,
    linger: Duration,
    closed: AtomicBool,
    /// Wall time of the most recent batch, feeding the retry-after
    /// hint: a client should wait roughly two batch rounds.
    last_batch_ms: AtomicU32,
    metrics: ServerMetrics,
}

/// Floor for the retry-after hint, so an idle server still tells
/// clients to back off a little instead of hammering.
const MIN_RETRY_HINT_MS: u32 = 25;

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` waiting queries,
    /// batching up to `max_batch` of them per round after lingering
    /// `linger` for stragglers.
    #[must_use]
    pub fn new(
        capacity: usize,
        max_batch: usize,
        linger: Duration,
        metrics: ServerMetrics,
    ) -> Arc<Self> {
        Arc::new(Self {
            pending: Mutex::new(VecDeque::new()),
            submitted: Condvar::new(),
            capacity: capacity.max(1),
            max_batch: max_batch.max(1),
            linger,
            closed: AtomicBool::new(false),
            last_batch_ms: AtomicU32::new(0),
            metrics,
        })
    }

    /// Admits one query, returning the slot its result will arrive in.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] once [`close`](Self::close) ran.
    /// Neither blocks.
    pub fn submit(
        &self,
        range: Cuboid,
        ctx: Option<SpanContext>,
        admission: Option<TraceSpan>,
    ) -> Result<Arc<ResponseSlot>, SubmitError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let slot = ResponseSlot::new();
        {
            let mut pending = self.pending.lock();
            if pending.len() >= self.capacity {
                drop(pending);
                self.metrics.shed.inc();
                return Err(SubmitError::Overloaded {
                    retry_after_ms: self.retry_hint_ms(),
                });
            }
            pending.push_back(PendingQuery {
                range,
                ctx,
                admission,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            self.metrics.queue_depth.add(1);
        }
        self.submitted.notify_all();
        Ok(slot)
    }

    /// Current retry-after suggestion: about two batch rounds.
    fn retry_hint_ms(&self) -> u32 {
        self.last_batch_ms
            .load(Ordering::Relaxed)
            .saturating_mul(2)
            .max(MIN_RETRY_HINT_MS)
    }

    /// Stops admitting new queries. Already-queued queries still run;
    /// the batcher exits once the queue is empty.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.submitted.notify_all();
    }

    /// True once [`close`](Self::close) ran.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Queries currently waiting (test/diagnostic helper).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.pending.lock().len()
    }

    /// Blocks until at least one query is queued or the queue is
    /// closed, then drains up to `max_batch` queries. `None` means
    /// closed *and* drained: the batcher should exit.
    fn next_batch(&self) -> Option<Vec<PendingQuery>> {
        let mut pending = self.pending.lock();
        while pending.is_empty() {
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _timed_out) = self
                .submitted
                .wait_timeout(pending, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            pending = guard;
        }
        drop(pending);
        // Linger briefly so a burst arriving over a few hundred
        // microseconds coalesces into one pooled round.
        if !self.linger.is_zero() {
            std::thread::sleep(self.linger);
        }
        let mut pending = self.pending.lock();
        let take = pending.len().min(self.max_batch);
        let batch: Vec<PendingQuery> = pending.drain(..take).collect();
        drop(pending);
        self.metrics
            .queue_depth
            .add(-(i64::try_from(batch.len()).unwrap_or(i64::MAX)));
        Some(batch)
    }
}

/// The batcher loop: drains the queue until it is closed *and* empty,
/// executing each batch in one [`QueryService::query_batch`] round.
/// Run on a dedicated thread by `Server::start`.
pub fn run_batcher<S: QueryService + ?Sized>(service: &S, queue: &AdmissionQueue) {
    let recorder = service.recorder();
    while let Some(mut batch) = queue.next_batch() {
        let drained = Instant::now();
        #[allow(clippy::cast_precision_loss)]
        {
            queue.metrics.batches.inc();
            queue.metrics.batch_size.record(batch.len() as f64);
        }
        let batch_size = batch.len() as u64;
        // Close each query's admission span: its duration is exactly
        // the time the query sat in the queue before this drain.
        let mut batch_spans = Vec::with_capacity(batch.len());
        for p in &mut batch {
            let waited_us =
                u64::try_from(drained.duration_since(p.enqueued).as_micros()).unwrap_or(u64::MAX);
            if let Some(mut span) = p.admission.take() {
                span.note(names::QUEUE_US, waited_us);
                span.finish();
            }
            batch_spans.push(p.ctx.map(|ctx| {
                let mut span = recorder.span_under(ctx, names::SERVER_BATCH);
                span.note(names::BATCH_SIZE, batch_size);
                span
            }));
        }
        let queries: Vec<TracedQuery> = batch
            .iter()
            .map(|p| TracedQuery {
                range: p.range,
                ctx: p.ctx,
            })
            .collect();
        let round = Instant::now();
        let mut results = service.query_batch_traced(&queries).into_iter();
        let store_ms = round.elapsed().as_secs_f64() * 1_000.0;
        for (p, span) in batch.into_iter().zip(batch_spans) {
            // `query_batch_traced` returns exactly one entry per
            // query; a short answer would be an internal bug, surfaced
            // to the client as a storage-class error rather than a
            // hang.
            let result = results
                .next()
                .unwrap_or(Err(CoreError::Storage(StorageError::WorkerPanicked)));
            if let Some(span) = span {
                span.finish();
            }
            let now = Instant::now();
            p.slot.fill(BatchedOutcome {
                result,
                admission_ms: drained.duration_since(p.enqueued).as_secs_f64() * 1_000.0,
                batch_ms: now.duration_since(drained).as_secs_f64() * 1_000.0,
                store_ms,
            });
        }
        // Slow queries detected during this round surface on stderr as
        // structured single-line records.
        for entry in service.drain_slow_queries() {
            eprintln!("{}", entry.to_line());
        }
        let elapsed = drained.elapsed().as_millis();
        queue.last_batch_ms.store(
            u32::try_from(elapsed).unwrap_or(u32::MAX),
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;
    use blot_obs::MetricsRegistry;

    fn metrics() -> ServerMetrics {
        ServerMetrics::register(&MetricsRegistry::new())
    }

    #[test]
    fn queue_sheds_above_capacity_without_blocking() {
        let q = AdmissionQueue::new(2, 8, Duration::ZERO, metrics());
        let range = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        assert!(q.submit(range, None, None).is_ok());
        assert!(q.submit(range, None, None).is_ok());
        match q.submit(range, None, None) {
            Err(SubmitError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= MIN_RETRY_HINT_MS);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_with_shutting_down() {
        let q = AdmissionQueue::new(4, 8, Duration::ZERO, metrics());
        q.close();
        let range = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        assert!(matches!(
            q.submit(range, None, None),
            Err(SubmitError::ShuttingDown)
        ));
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn response_slot_times_out_then_delivers() {
        let slot = ResponseSlot::new();
        assert!(slot.wait(Duration::from_millis(10)).is_none());
        slot.fill(BatchedOutcome {
            result: Err(CoreError::NoReplicas),
            admission_ms: 0.5,
            batch_ms: 1.0,
            store_ms: 0.75,
        });
        match slot.wait(Duration::from_millis(10)) {
            Some(BatchedOutcome {
                result: Err(CoreError::NoReplicas),
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
