//! The BLOT wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "BLOT"
//! 4       1     protocol version (currently 1)
//! 5       1     frame kind
//! 6       2     reserved (must be zero)
//! 8       4     payload length, little-endian
//! 12      n     payload (kind-specific, every integer little-endian)
//! ```
//!
//! Requests are `Ping` (empty), `RangeQuery` (six `f64`s: the min and
//! max corners of the cuboid) and `Stats` (empty for the default drift
//! band, or `lo: f64, hi: f64, min_samples: u64`). Replies are `Pong`,
//! `QueryOk` (routing metadata plus the result records as a
//! `ROW`/`PLAIN` storage unit — the same lossless codec the store
//! uses on disk, so remote results are bit-identical to local ones),
//! `StatsOk` (a UTF-8 JSON document) and `Error` (a numeric
//! [`ErrorCode`], a retry-after hint in milliseconds, and a human
//! message). A server never answers a decodable-but-invalid frame by
//! dropping the connection; it answers with `Error`.
//!
//! Decoding never panics and never trusts a length field beyond
//! [`MAX_PAYLOAD`]; the fuzz target [`fuzz_decode`] feeds arbitrary
//! bytes through every decoder.

use std::fmt;
use std::io::{Read, Write};

use blot_codec::{Compression, EncodingScheme, Layout};
use blot_core::obs::DriftBand;
use blot_core::CoreError;
use blot_geo::{Cuboid, Point};
use blot_model::RecordBatch;
use blot_obs::{SpanContext, SpanId, TraceId};

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"BLOT";
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a frame payload. A header claiming more is rejected
/// before any allocation happens.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// Frame kind tags. Requests have the high bit clear, replies set
/// (`ERROR` deliberately stands out as `0xFF`).
pub mod kind {
    /// Liveness probe.
    pub const PING: u8 = 0x01;
    /// Range query over the store.
    pub const RANGE_QUERY: u8 = 0x02;
    /// Metrics + drift snapshot.
    pub const STATS: u8 = 0x03;
    /// Flight-recorder trace export.
    pub const TRACE: u8 = 0x04;
    /// Reply to `PING`.
    pub const PONG: u8 = 0x81;
    /// Successful query reply.
    pub const QUERY_OK: u8 = 0x82;
    /// Successful stats reply.
    pub const STATS_OK: u8 = 0x83;
    /// Successful trace-export reply.
    pub const TRACE_OK: u8 = 0x84;
    /// Structured error reply.
    pub const ERROR: u8 = 0xFF;
}

/// The lossless scheme used for the records blob in `QueryOk` replies.
#[must_use]
pub fn records_scheme() -> EncodingScheme {
    EncodingScheme::new(Layout::Row, Compression::Plain)
}

/// Wire-protocol decode/transport failure.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    BadVersion {
        /// Version byte received.
        got: u8,
    },
    /// Unknown frame kind for this direction.
    UnknownKind {
        /// Kind byte received.
        got: u8,
    },
    /// The header claimed a payload larger than [`MAX_PAYLOAD`].
    Oversize {
        /// Claimed payload length.
        len: u32,
    },
    /// The payload ended before its advertised content.
    Truncated,
    /// The payload continued past its advertised content.
    Trailing,
    /// A payload field failed validation.
    BadPayload {
        /// Which field, for diagnostics.
        what: &'static str,
    },
    /// Transport failure underneath the framing.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad frame magic (expected \"BLOT\")"),
            Self::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (speak {VERSION})")
            }
            Self::UnknownKind { got } => write!(f, "unknown frame kind 0x{got:02X}"),
            Self::Oversize { len } => {
                write!(f, "payload length {len} exceeds limit {MAX_PAYLOAD}")
            }
            Self::Truncated => write!(f, "truncated frame payload"),
            Self::Trailing => write!(f, "trailing bytes after frame payload"),
            Self::BadPayload { what } => write!(f, "invalid payload field: {what}"),
            Self::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<FrameError>()
};

/// Numeric error codes carried by `Error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame could not be decoded.
    Malformed = 1,
    /// The client spoke an unsupported protocol version.
    BadVersion = 2,
    /// The admission queue is full; retry after the hint.
    Overloaded = 3,
    /// The server is draining and accepts no new queries.
    ShuttingDown = 4,
    /// Every candidate replica failed at the storage layer.
    Storage = 5,
    /// The store holds no replicas.
    NoReplicas = 6,
    /// The query named a replica that was never built.
    NoSuchReplica = 7,
    /// Any other server-side failure.
    Internal = 8,
    /// The connection sat idle past the server's idle timeout.
    IdleTimeout = 9,
    /// A coordinator could not reach (or was shed by) one of its
    /// shards; the query produced no partial results. Retry after the
    /// hint — the shard may recover or the shard map may heal.
    ShardUnavailable = 10,
}

impl ErrorCode {
    /// The wire representation.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Parses a wire code; unknown codes collapse to [`Self::Internal`]
    /// so old clients survive new servers.
    #[must_use]
    pub fn from_u16(raw: u16) -> Self {
        match raw {
            1 => Self::Malformed,
            2 => Self::BadVersion,
            3 => Self::Overloaded,
            4 => Self::ShuttingDown,
            5 => Self::Storage,
            6 => Self::NoReplicas,
            7 => Self::NoSuchReplica,
            9 => Self::IdleTimeout,
            10 => Self::ShardUnavailable,
            _ => Self::Internal,
        }
    }

    /// Maps a store error onto the wire.
    #[must_use]
    pub fn from_core(e: &CoreError) -> Self {
        match e {
            CoreError::Storage(_) => Self::Storage,
            CoreError::NoReplicas => Self::NoReplicas,
            CoreError::NoSuchReplica { .. } => Self::NoSuchReplica,
            CoreError::ShardUnavailable { .. } => Self::ShardUnavailable,
            _ => Self::Internal,
        }
    }
}

/// The structured payload of an `Error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub code: ErrorCode,
    /// For [`ErrorCode::Overloaded`] and [`ErrorCode::ShardUnavailable`]:
    /// how long the client should wait before retrying, in
    /// milliseconds. Zero means "no hint".
    pub retry_after_ms: u32,
    /// Human-readable detail (never required for correct behaviour).
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if self.retry_after_ms > 0 {
            write!(f, " (retry after {} ms)", self.retry_after_ms)?;
        }
        Ok(())
    }
}

/// A query result as carried on the wire (the subset of
/// [`blot_core::store::QueryResult`] a remote client can see), plus
/// the server-side stage breakdown of where the request's wall time
/// went.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteQueryResult {
    /// The matching records, in the replica's scan order.
    pub records: RecordBatch,
    /// Replica that served the query.
    pub replica: u32,
    /// Simulated total scan cost, ms.
    pub sim_ms: f64,
    /// Simulated makespan, ms.
    pub makespan_ms: f64,
    /// Partitions scanned.
    pub partitions_scanned: u32,
    /// Involved units skipped via their zone-map footer (counted
    /// within `partitions_scanned`).
    pub units_skipped: u64,
    /// Payload bytes the skipped units never transferred.
    pub bytes_skipped: u64,
    /// Wall ms the query waited in the admission queue.
    pub admission_ms: f64,
    /// Wall ms from batch drain to this query's result being posted
    /// (batch residency).
    pub batch_ms: f64,
    /// Wall ms the store spent executing the whole pooled batch round.
    pub store_ms: f64,
    /// Replicas that failed before one answered.
    pub failed_over: Vec<u32>,
}

/// The payload of a [`Request::RangeQuery`]: the range plus an
/// optional client-supplied trace context. When present, the server
/// executes the query under the client's trace so its flight-recorder
/// spans parent onto the client's span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireQuery {
    /// The query range.
    pub range: Cuboid,
    /// Client-supplied trace context, if the client is tracing.
    pub ctx: Option<SpanContext>,
}

impl WireQuery {
    /// An untraced wire query.
    #[must_use]
    pub fn new(range: Cuboid) -> Self {
        Self { range, ctx: None }
    }
}

/// The payload of a [`Request::Trace`]: which flight-recorder spans to
/// export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceFilter {
    /// Keep only traces in which some span lasted at least this many
    /// wall milliseconds; `0` keeps everything.
    pub slow_ms: f64,
    /// Keep only the most recent `last` traces; `0` keeps everything.
    pub last: u32,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Execute a range query (optionally under a client trace context).
    RangeQuery(WireQuery),
    /// Snapshot metrics and drift; `None` uses the server's default
    /// band.
    Stats(Option<DriftBand>),
    /// Export the server's flight recorder.
    Trace(TraceFilter),
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Successful query.
    QueryOk(Box<RemoteQueryResult>),
    /// Stats snapshot (a JSON document).
    StatsOk(String),
    /// Flight-recorder export (a JSON array of span records).
    TraceOk(String),
    /// Structured failure; the connection stays usable unless the code
    /// says otherwise.
    Error(WireError),
}

/// A decoded frame: kind byte plus raw payload.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame kind (see [`kind`]).
    pub kind: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

// ---------------------------------------------------------------------
// Payload cursor: bounds-checked little-endian reads, no indexing.

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(FrameError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes(b.try_into().unwrap_or([0; 2])))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
    }

    fn u128(&mut self) -> Result<u128, FrameError> {
        let b = self.take(16)?;
        Ok(u128::from_le_bytes(b.try_into().unwrap_or([0; 16])))
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::Trailing)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads the optional trailing trace context of a `RangeQuery`: absent
/// (no bytes left) or exactly 24 bytes (`u128` trace id + `u64` span
/// id, both nonzero-trace).
fn read_trace_ctx(c: &mut Cursor<'_>) -> Result<Option<SpanContext>, FrameError> {
    if c.remaining() == 0 {
        return Ok(None);
    }
    let trace = c.u128()?;
    let span = c.u64()?;
    if trace == 0 {
        return Err(FrameError::BadPayload {
            what: "zero trace id",
        });
    }
    Ok(Some(SpanContext {
        trace: TraceId(trace),
        span: SpanId(span),
    }))
}

fn read_cuboid(c: &mut Cursor<'_>) -> Result<Cuboid, FrameError> {
    let vals = [c.f64()?, c.f64()?, c.f64()?, c.f64()?, c.f64()?, c.f64()?];
    if vals.iter().any(|v| !v.is_finite()) {
        return Err(FrameError::BadPayload {
            what: "non-finite query coordinate",
        });
    }
    let [x0, y0, t0, x1, y1, t1] = vals;
    let (min, max) = (Point::new(x0, y0, t0), Point::new(x1, y1, t1));
    // `Cuboid::new` panics on inverted bounds; the wire layer must not.
    for axis in 0..3 {
        if min.axis(axis) > max.axis(axis) {
            return Err(FrameError::BadPayload {
                what: "query min exceeds max",
            });
        }
    }
    Ok(Cuboid::new(min, max))
}

fn put_cuboid(out: &mut Vec<u8>, q: &Cuboid) {
    let (min, max) = (q.min(), q.max());
    for v in [min.x, min.y, min.t, max.x, max.y, max.t] {
        put_f64(out, v);
    }
}

// ---------------------------------------------------------------------
// Frame transport.

/// Serialises one frame (header + payload) into a byte vector.
///
/// Payloads larger than [`MAX_PAYLOAD`] cannot be produced by this
/// crate's encoders; if one ever is, the length field saturates and the
/// peer rejects the frame rather than mis-framing the stream.
#[must_use]
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u16(&mut out, 0);
    put_u32(&mut out, u32::try_from(payload.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (single `write_all`, then flush).
///
/// # Errors
///
/// Propagates transport errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from `r`.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure (including EOF mid-frame),
/// or any framing error from the header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut first = [0_u8; 1];
    r.read_exact(&mut first)?;
    let [first_byte] = first;
    read_frame_rest(r, first_byte)
}

/// Reads the remainder of a frame whose first byte was already
/// consumed (connection handlers poll a single byte so they can check
/// shutdown and idle deadlines between frames).
///
/// # Errors
///
/// Same contract as [`read_frame`].
pub fn read_frame_rest<R: Read>(r: &mut R, first: u8) -> Result<Frame, FrameError> {
    let mut rest = [0_u8; HEADER_LEN - 1];
    r.read_exact(&mut rest)?;
    let mut header = [0_u8; HEADER_LEN];
    if let Some(h0) = header.first_mut() {
        *h0 = first;
    }
    if let Some(dst) = header.get_mut(1..) {
        dst.copy_from_slice(&rest);
    }
    let mut c = Cursor::new(&header);
    if c.take(4)? != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = c.take(1)?.first().copied().unwrap_or(0);
    if version != VERSION {
        return Err(FrameError::BadVersion { got: version });
    }
    let kind = c.take(1)?.first().copied().unwrap_or(0);
    let _reserved = c.u16()?;
    let len = c.u32()?;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize { len });
    }
    // Bound the read with `take` so a lying peer cannot make us wait
    // for more than the advertised payload.
    let mut payload = Vec::with_capacity(len as usize);
    let got = r.take(u64::from(len)).read_to_end(&mut payload)?;
    if got < len as usize {
        return Err(FrameError::Truncated);
    }
    Ok(Frame { kind, payload })
}

// ---------------------------------------------------------------------
// Request / response codecs.

impl Request {
    /// Serialises into `(kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Self::Ping => (kind::PING, Vec::new()),
            Self::RangeQuery(q) => {
                let mut out = Vec::with_capacity(72);
                put_cuboid(&mut out, &q.range);
                if let Some(ctx) = q.ctx {
                    put_u128(&mut out, ctx.trace.0);
                    put_u64(&mut out, ctx.span.0);
                }
                (kind::RANGE_QUERY, out)
            }
            Self::Stats(None) => (kind::STATS, Vec::new()),
            Self::Stats(Some(band)) => {
                let mut out = Vec::with_capacity(24);
                put_f64(&mut out, band.lo);
                put_f64(&mut out, band.hi);
                put_u64(&mut out, band.min_samples);
                (kind::STATS, out)
            }
            Self::Trace(filter) => {
                let mut out = Vec::with_capacity(12);
                put_f64(&mut out, filter.slow_ms);
                put_u32(&mut out, filter.last);
                (kind::TRACE, out)
            }
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::UnknownKind`] for reply kinds or garbage;
    /// [`FrameError::Truncated`] / [`FrameError::Trailing`] /
    /// [`FrameError::BadPayload`] for a payload that does not match its
    /// kind.
    pub fn decode(frame: &Frame) -> Result<Self, FrameError> {
        let mut c = Cursor::new(&frame.payload);
        let req = match frame.kind {
            kind::PING => Self::Ping,
            kind::RANGE_QUERY => {
                let range = read_cuboid(&mut c)?;
                let ctx = read_trace_ctx(&mut c)?;
                Self::RangeQuery(WireQuery { range, ctx })
            }
            kind::STATS => {
                if frame.payload.is_empty() {
                    Self::Stats(None)
                } else {
                    let (lo, hi) = (c.f64()?, c.f64()?);
                    let min_samples = c.u64()?;
                    if !lo.is_finite() || !hi.is_finite() || lo > hi {
                        return Err(FrameError::BadPayload {
                            what: "drift band bounds",
                        });
                    }
                    Self::Stats(Some(DriftBand {
                        lo,
                        hi,
                        min_samples,
                    }))
                }
            }
            kind::TRACE => {
                let slow_ms = c.f64()?;
                let last = c.u32()?;
                if !slow_ms.is_finite() || slow_ms < 0.0 {
                    return Err(FrameError::BadPayload {
                        what: "trace slow_ms",
                    });
                }
                Self::Trace(TraceFilter { slow_ms, last })
            }
            got => return Err(FrameError::UnknownKind { got }),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises into `(kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Self::Pong => (kind::PONG, Vec::new()),
            Self::QueryOk(r) => {
                let blob = records_scheme().encode(&r.records);
                let mut out = Vec::with_capacity(32 + 4 * r.failed_over.len() + blob.len());
                put_u32(&mut out, r.replica);
                put_u32(&mut out, r.partitions_scanned);
                put_u32(
                    &mut out,
                    u32::try_from(r.failed_over.len()).unwrap_or(u32::MAX),
                );
                put_f64(&mut out, r.sim_ms);
                put_f64(&mut out, r.makespan_ms);
                put_u64(&mut out, r.units_skipped);
                put_u64(&mut out, r.bytes_skipped);
                put_f64(&mut out, r.admission_ms);
                put_f64(&mut out, r.batch_ms);
                put_f64(&mut out, r.store_ms);
                for &id in &r.failed_over {
                    put_u32(&mut out, id);
                }
                put_u32(&mut out, u32::try_from(blob.len()).unwrap_or(u32::MAX));
                out.extend_from_slice(&blob);
                (kind::QUERY_OK, out)
            }
            Self::StatsOk(json) => (kind::STATS_OK, json.clone().into_bytes()),
            Self::TraceOk(json) => (kind::TRACE_OK, json.clone().into_bytes()),
            Self::Error(e) => {
                let msg = e.message.as_bytes();
                let msg_len = u16::try_from(msg.len()).unwrap_or(u16::MAX);
                let mut out = Vec::with_capacity(8 + usize::from(msg_len));
                put_u16(&mut out, e.code.as_u16());
                put_u32(&mut out, e.retry_after_ms);
                put_u16(&mut out, msg_len);
                out.extend_from_slice(msg.get(..usize::from(msg_len)).unwrap_or(msg));
                (kind::ERROR, out)
            }
        }
    }

    /// Decodes a reply frame.
    ///
    /// # Errors
    ///
    /// Same contract as [`Request::decode`], mirrored for reply kinds.
    pub fn decode(frame: &Frame) -> Result<Self, FrameError> {
        let mut c = Cursor::new(&frame.payload);
        let resp = match frame.kind {
            kind::PONG => Self::Pong,
            kind::QUERY_OK => {
                let replica = c.u32()?;
                let partitions_scanned = c.u32()?;
                let n_failed = c.u32()?;
                let sim_ms = c.f64()?;
                let makespan_ms = c.f64()?;
                let units_skipped = c.u64()?;
                let bytes_skipped = c.u64()?;
                let admission_ms = c.f64()?;
                let batch_ms = c.f64()?;
                let store_ms = c.f64()?;
                // `n_failed` is untrusted: bound it by the bytes that
                // actually remain before allocating.
                let remaining = frame.payload.len().saturating_sub(c.pos) / 4;
                if n_failed as usize > remaining {
                    return Err(FrameError::Truncated);
                }
                let mut failed_over = Vec::with_capacity(n_failed as usize);
                for _ in 0..n_failed {
                    failed_over.push(c.u32()?);
                }
                let blob_len = c.u32()? as usize;
                let blob = c.take(blob_len)?;
                let records =
                    records_scheme()
                        .decode(blob)
                        .map_err(|_| FrameError::BadPayload {
                            what: "records blob",
                        })?;
                Self::QueryOk(Box::new(RemoteQueryResult {
                    records,
                    replica,
                    sim_ms,
                    makespan_ms,
                    partitions_scanned,
                    units_skipped,
                    bytes_skipped,
                    admission_ms,
                    batch_ms,
                    store_ms,
                    failed_over,
                }))
            }
            kind::STATS_OK => {
                let json = String::from_utf8(frame.payload.clone()).map_err(|_| {
                    FrameError::BadPayload {
                        what: "stats JSON is not UTF-8",
                    }
                })?;
                // The cursor never advanced; consume it so `finish`
                // does not flag the payload as trailing.
                let _ = c.take(frame.payload.len());
                Self::StatsOk(json)
            }
            kind::TRACE_OK => {
                let json = String::from_utf8(frame.payload.clone()).map_err(|_| {
                    FrameError::BadPayload {
                        what: "trace JSON is not UTF-8",
                    }
                })?;
                // Same trailing-bytes bookkeeping as `StatsOk`.
                let _ = c.take(frame.payload.len());
                Self::TraceOk(json)
            }
            kind::ERROR => {
                let code = ErrorCode::from_u16(c.u16()?);
                let retry_after_ms = c.u32()?;
                let msg_len = usize::from(c.u16()?);
                let msg = c.take(msg_len)?;
                let message = String::from_utf8_lossy(msg).into_owned();
                Self::Error(WireError {
                    code,
                    retry_after_ms,
                    message,
                })
            }
            got => return Err(FrameError::UnknownKind { got }),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Fuzz entry point: decoding arbitrary bytes must never panic,
/// whatever corner of the grammar they land in. Wired into
/// `cargo xtask fuzz` as the `server_frame` target.
pub fn fuzz_decode(bytes: &[u8]) {
    // Full frames from a byte stream.
    let mut reader = bytes;
    if let Ok(frame) = read_frame(&mut reader) {
        exercise(&frame);
    }
    // Raw kind + payload splits, bypassing the header.
    if let Some((&kind, payload)) = bytes.split_first() {
        let frame = Frame {
            kind,
            payload: payload.to_vec(),
        };
        exercise(&frame);
    }
}

/// Decodes `frame` both ways for [`fuzz_decode`]. The property under
/// test is only "never panics", but the outcomes pass through
/// `black_box` so the optimiser cannot prove the decodes dead and
/// elide the very code paths the fuzzer is here to walk.
fn exercise(frame: &Frame) {
    std::hint::black_box(Request::decode(frame).is_ok());
    std::hint::black_box(Response::decode(frame).is_ok());
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;
    use blot_model::Record;

    fn sample_batch() -> RecordBatch {
        let mut b = RecordBatch::new();
        for i in 0..20_u32 {
            b.push(Record {
                oid: i,
                time: 1_300_000_000 + i64::from(i) * 7,
                x: f64::from(i) * 0.25,
                y: 40.0 - f64::from(i) * 0.125,
                speed: 13.5,
                heading: 270.0,
                occupied: i % 2 == 0,
                passengers: (i % 4) as u8,
            });
        }
        b
    }

    fn roundtrip_request(req: &Request) -> Request {
        let (kind, payload) = req.encode();
        let bytes = encode_frame(kind, &payload);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        Request::decode(&frame).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let (kind, payload) = resp.encode();
        let bytes = encode_frame(kind, &payload);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        Response::decode(&frame).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        let q = Cuboid::new(Point::new(-1.0, 2.0, 0.0), Point::new(3.5, 4.0, 600.0));
        for req in [
            Request::Ping,
            Request::RangeQuery(WireQuery::new(q)),
            Request::RangeQuery(WireQuery {
                range: q,
                ctx: Some(SpanContext::fresh()),
            }),
            Request::Stats(None),
            Request::Stats(Some(DriftBand {
                lo: 0.25,
                hi: 4.0,
                min_samples: 3,
            })),
            Request::Trace(TraceFilter {
                slow_ms: 5.0,
                last: 3,
            }),
            Request::Trace(TraceFilter {
                slow_ms: 0.0,
                last: 0,
            }),
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn zero_trace_id_in_query_context_is_rejected() {
        let q = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 60.0));
        let mut payload = Vec::new();
        put_cuboid(&mut payload, &q);
        put_u128(&mut payload, 0); // trace id zero is reserved for "untraced"
        put_u64(&mut payload, 7);
        let frame = Frame {
            kind: kind::RANGE_QUERY,
            payload,
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn trace_filter_rejects_non_finite_and_negative_thresholds() {
        for slow_ms in [f64::NAN, f64::INFINITY, -1.0] {
            let mut payload = Vec::new();
            put_f64(&mut payload, slow_ms);
            put_u32(&mut payload, 5);
            let frame = Frame {
                kind: kind::TRACE,
                payload,
            };
            assert!(matches!(
                Request::decode(&frame),
                Err(FrameError::BadPayload { .. })
            ));
        }
    }

    #[test]
    fn responses_roundtrip_bit_identically() {
        let result = RemoteQueryResult {
            records: sample_batch(),
            replica: 2,
            sim_ms: 123.5,
            makespan_ms: 60.25,
            partitions_scanned: 7,
            units_skipped: 11,
            bytes_skipped: 4096,
            admission_ms: 0.75,
            batch_ms: 1.5,
            store_ms: 42.125,
            failed_over: vec![0, 1],
        };
        let resp = Response::QueryOk(Box::new(result.clone()));
        match roundtrip_response(&resp) {
            Response::QueryOk(got) => {
                assert_eq!(got.records, result.records);
                assert_eq!(*got, result);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        let err = Response::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: 40,
            message: "queue full".to_owned(),
        });
        assert_eq!(roundtrip_response(&err), err);
        let stats = Response::StatsOk("{\"enabled\":true}".to_owned());
        assert_eq!(roundtrip_response(&stats), stats);
        let trace = Response::TraceOk("[{\"name\":\"query\"}]".to_owned());
        assert_eq!(roundtrip_response(&trace), trace);
        assert_eq!(roundtrip_response(&Response::Pong), Response::Pong);
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        // Bad magic.
        let mut bytes = encode_frame(kind::PING, &[]);
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::BadMagic)
        ));
        // Bad version.
        let mut bytes = encode_frame(kind::PING, &[]);
        bytes[4] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::BadVersion { got: 99 })
        ));
        // Oversize claim.
        let mut bytes = encode_frame(kind::PING, &[]);
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::Oversize { .. })
        ));
        // Truncated payload.
        let bytes = encode_frame(kind::RANGE_QUERY, &[0_u8; 10]);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::Truncated)
        ));
        // Trailing bytes.
        let bytes = encode_frame(kind::PING, &[1, 2, 3]);
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        assert!(matches!(Request::decode(&frame), Err(FrameError::Trailing)));
        // Non-finite coordinates.
        let mut payload = Vec::new();
        for _ in 0..6 {
            put_f64(&mut payload, f64::NAN);
        }
        let frame = Frame {
            kind: kind::RANGE_QUERY,
            payload,
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::BadPayload { .. })
        ));
        // Inverted bounds.
        let mut payload = Vec::new();
        for v in [1.0, 0.0, 0.0, 0.0, 1.0, 1.0] {
            put_f64(&mut payload, v);
        }
        let frame = Frame {
            kind: kind::RANGE_QUERY,
            payload,
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn every_error_code_roundtrips_u16() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::BadVersion,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Storage,
            ErrorCode::NoReplicas,
            ErrorCode::NoSuchReplica,
            ErrorCode::Internal,
            ErrorCode::IdleTimeout,
            ErrorCode::ShardUnavailable,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
    }

    #[test]
    fn fuzz_decode_survives_garbage_smoke() {
        fuzz_decode(&[]);
        fuzz_decode(b"BLOT");
        fuzz_decode(&encode_frame(kind::QUERY_OK, &[0xFF; 64]));
        let mut state = 0x9E37_79B9_u32;
        let mut bytes = vec![0_u8; 512];
        for b in &mut bytes {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            *b = (state & 0xFF) as u8;
        }
        fuzz_decode(&bytes);
    }
}
