//! blot-server — the concurrent network serving layer of the BLOT
//! store.
//!
//! The paper's BLOT abstraction (§II) assumes a front end that receives
//! range queries, routes each to the estimated-cheapest replica, and
//! scans the involved partitions. This crate is that front end: a
//! std-only, dependency-free TCP server wrapping any
//! [`blot_core::store::QueryService`] behind a small length-prefixed
//! binary protocol ([`wire`]).
//!
//! * [`wire`] — versioned frames, `Ping`/`RangeQuery`/`Stats` requests,
//!   structured error replies (a decodable request is *always*
//!   answered, never dropped);
//! * [`batch`] — bounded admission queue shedding load with
//!   `Overloaded` + retry-after, and micro-batching of queued queries
//!   into single pooled [`query_batch`](blot_core::store::BlotStore::query_batch)
//!   rounds;
//! * [`conn`] — accept loop and fixed connection-handler pool (the one
//!   audited home of serving-layer OS threads);
//! * [`shutdown`] — a cooperative latch (`unsafe` is forbidden
//!   workspace-wide, so there is no signal handler; the CLI trips the
//!   latch from a stdin watcher instead);
//! * [`server`] — lifecycle: bind, serve, graceful drain
//!   (stop accepting → answer in-flight → join threads → drain the
//!   scan pool → flush metrics);
//! * [`client`] — a blocking client with `Overloaded` retry/backoff,
//!   shared by `blot query --remote` and the load generator;
//! * [`stats`] — the `Stats` reply payload (metrics + drift + the same
//!   text rendering the local CLI prints).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use blot_core::prelude::*;
//! use blot_server::client::Client;
//! use blot_server::server::{Server, ServerConfig};
//! use blot_storage::MemBackend;
//! use blot_tracegen::FleetConfig;
//!
//! // Build a small store…
//! let config = FleetConfig::small();
//! let (data, universe) = (config.generate(), config.universe());
//! let env = EnvProfile::local_cluster();
//! let model = CostModel::calibrate(&env, &data, 7);
//! let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
//! store
//!     .build_replica(
//!         &data,
//!         ReplicaConfig::new(
//!             SchemeSpec::new(16, 4),
//!             EncodingScheme::new(Layout::Row, Compression::Plain),
//!         ),
//!     )
//!     .unwrap();
//!
//! // …serve it, query it remotely, shut down.
//! let server = Server::start(Arc::new(store), "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//! let q = Cuboid::from_centroid(universe.centroid(), QuerySize::new(0.4, 0.4, 1800.0));
//! let result = client.query(&q).unwrap();
//! assert_eq!(result.records.len(), data.count_in_range(&q));
//! let report = server.shutdown(std::time::Duration::from_secs(10));
//! assert!(report.threads_joined && report.pool_drained);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod conn;
pub mod server;
pub mod shutdown;
pub mod stats;
pub mod wire;

pub use client::{Client, ClientConfig, ClientError};
pub use server::{Server, ServerConfig, ServerError, ShutdownReport};
pub use shutdown::ShutdownFlag;
