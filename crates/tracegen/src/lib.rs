//! Deterministic synthetic taxi-fleet GPS traces.
//!
//! The paper's evaluation uses "a sample of vehicle GPS log collected
//! from more than 4,000 taxis in Shanghai during a month" — roughly 65
//! million records over longitude 120–122, latitude 30–32,
//! 2007-11-01 to 2007-11-29, 8 attributes per record. That dataset is
//! proprietary, so this crate generates a synthetic equivalent with the
//! same envelope and — crucially for the experiments — the same
//! *structural* properties:
//!
//! * **spatial clustering**: taxis orbit a handful of hotspot centres
//!   (train stations, downtown) with occasional long excursions, so
//!   space partition sizes are skewed exactly the way k-d equal-count
//!   splitting expects to fix;
//! * **temporal smoothness**: consecutive fixes of one vehicle are
//!   seconds apart and metres apart, which is what makes delta and XOR
//!   column encodings effective;
//! * **scale-freedom**: record volume is a parameter, so the Figure 6
//!   data-size sweep (3.7 GB → 3.7 TB) can be *modelled* from a sample,
//!   as the paper itself does ("we only need a small portion of the
//!   data to build the cost model").
//!
//! Generation is deterministic: the same [`FleetConfig`] (including
//! `seed`) always yields byte-identical traces, and each taxi's
//! trajectory depends only on `(seed, taxi_id)`, not on how many other
//! taxis are generated.
//!
//! # Example
//!
//! ```
//! use blot_tracegen::FleetConfig;
//!
//! let batch = FleetConfig::small().generate();
//! assert!(!batch.is_empty());
//! // Deterministic: same seed, same trace.
//! assert_eq!(batch, FleetConfig::small().generate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use blot_geo::{Cuboid, Point};
use blot_model::{Record, RecordBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seconds in the paper's 28-day observation window.
pub const PAPER_DURATION_SECS: i64 = 28 * 24 * 3600;

/// Configuration of the synthetic fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of vehicles.
    pub num_taxis: u32,
    /// GPS fixes generated per vehicle.
    pub records_per_taxi: u32,
    /// Mean seconds between consecutive fixes of one vehicle.
    pub sample_interval_secs: i64,
    /// West / east longitude limits.
    pub lon_range: (f64, f64),
    /// South / north latitude limits.
    pub lat_range: (f64, f64),
    /// Timestamp of the first possible fix (seconds).
    pub start_time: i64,
    /// Number of traffic hotspots vehicles gravitate towards.
    pub num_hotspots: usize,
    /// RNG seed; everything is derived from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A laptop-sized config for tests and examples (200 taxis × 250
    /// fixes = 50 000 records).
    #[must_use]
    pub fn small() -> Self {
        Self {
            num_taxis: 200,
            records_per_taxi: 250,
            sample_interval_secs: 30,
            lon_range: (120.0, 122.0),
            lat_range: (30.0, 32.0),
            start_time: 0,
            num_hotspots: 6,
            seed: 0x5EED_B107,
        }
    }

    /// The paper's evaluation envelope: ~4 000 taxis for a month at a
    /// 30 s cadence (≈ 65 M records in Shanghai's 2°×2° box). Generating
    /// this takes a while and several GiB — the experiments instead use
    /// [`Self::sample_scale`] plus analytic record-count scaling, as the
    /// paper does.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            num_taxis: 4_000,
            records_per_taxi: 16_250,
            ..Self::small()
        }
    }

    /// The sampling config used to calibrate cost models and compression
    /// ratios in the experiment harness (1 000 taxis × 1 000 fixes = 1 M
    /// records).
    #[must_use]
    pub fn sample_scale() -> Self {
        Self {
            num_taxis: 1_000,
            records_per_taxi: 1_000,
            ..Self::small()
        }
    }

    /// Total records this config generates.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        u64::from(self.num_taxis) * u64::from(self.records_per_taxi)
    }

    /// The spatio-temporal universe the generated records live in.
    #[must_use]
    pub fn universe(&self) -> Cuboid {
        #[allow(clippy::cast_precision_loss)]
        let t_end =
            self.start_time + i64::from(self.records_per_taxi) * self.sample_interval_secs * 2;
        Cuboid::new(
            Point::new(self.lon_range.0, self.lat_range.0, self.start_time as f64),
            Point::new(self.lon_range.1, self.lat_range.1, t_end as f64),
        )
    }

    /// Hotspot centres, derived deterministically from the seed. The
    /// first hotspot is the "downtown" with the strongest pull.
    #[must_use]
    pub fn hotspots(&self) -> Vec<(f64, f64)> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x4807_5907);
        (0..self.num_hotspots)
            .map(|_| {
                // Keep hotspots away from the border so orbits stay inside.
                let lon = rng.gen_range(0.2..0.8);
                let lat = rng.gen_range(0.2..0.8);
                (
                    self.lon_range.0 + lon * (self.lon_range.1 - self.lon_range.0),
                    self.lat_range.0 + lat * (self.lat_range.1 - self.lat_range.0),
                )
            })
            .collect()
    }

    /// Generates the full trace as one batch (records ordered by taxi,
    /// then time).
    #[must_use]
    pub fn generate(&self) -> RecordBatch {
        let mut batch =
            RecordBatch::with_capacity(usize::try_from(self.total_records()).unwrap_or(0));
        for taxi in 0..self.num_taxis {
            for r in self.taxi_trace(taxi) {
                batch.push(r);
            }
        }
        batch
    }

    /// Iterator over the fixes of one vehicle — use this to stream huge
    /// fleets without materialising them.
    #[must_use]
    pub fn taxi_trace(&self, taxi: u32) -> TaxiTrace {
        TaxiTrace::new(self, taxi)
    }
}

/// Degrees per km at these latitudes, roughly.
const DEG_PER_KM: f64 = 1.0 / 100.0;
/// GPS loggers report ~6 decimal places.
const QUANTUM: f64 = 1e-6;

fn quantize(v: f64) -> f64 {
    (v / QUANTUM).round() * QUANTUM
}

/// Iterator producing one vehicle's fixes in time order.
#[derive(Debug)]
pub struct TaxiTrace {
    rng: SmallRng,
    hotspots: Vec<(f64, f64)>,
    lon_range: (f64, f64),
    lat_range: (f64, f64),
    interval: i64,
    remaining: u32,
    oid: u32,
    time: i64,
    x: f64,
    y: f64,
    dest: (f64, f64),
    speed_kmh: f64,
    occupied: bool,
    passengers: u8,
}

impl TaxiTrace {
    fn new(config: &FleetConfig, taxi: u32) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ (u64::from(taxi) << 20) ^ 0xA5A5);
        let hotspots = config.hotspots();
        // Start near a random hotspot.
        let h = hotspots
            .get(rng.gen_range(0..hotspots.len()))
            .copied()
            .unwrap_or((0.0, 0.0));
        let x = h.0 + rng.gen_range(-0.05..0.05);
        let y = h.1 + rng.gen_range(-0.05..0.05);
        // Stagger vehicle start times across one interval.
        let time = config.start_time + rng.gen_range(0..config.sample_interval_secs.max(1));
        let mut t = Self {
            rng,
            hotspots,
            lon_range: config.lon_range,
            lat_range: config.lat_range,
            interval: config.sample_interval_secs,
            remaining: config.records_per_taxi,
            oid: taxi,
            time,
            x,
            y,
            dest: (0.0, 0.0),
            speed_kmh: 30.0,
            occupied: false,
            passengers: 0,
        };
        t.pick_destination();
        t
    }

    fn pick_destination(&mut self) {
        // 80%: a trip towards a hotspot (downtown weighted double);
        // 20%: a uniform excursion anywhere in the box.
        let dest = if self.rng.gen_bool(0.8) {
            let idx = if self.rng.gen_bool(0.3) {
                0
            } else {
                self.rng.gen_range(0..self.hotspots.len())
            };
            let (hx, hy) = self.hotspots.get(idx).copied().unwrap_or((0.0, 0.0));
            (
                hx + self.rng.gen_range(-0.08..0.08),
                hy + self.rng.gen_range(-0.08..0.08),
            )
        } else {
            (
                self.rng.gen_range(self.lon_range.0..self.lon_range.1),
                self.rng.gen_range(self.lat_range.0..self.lat_range.1),
            )
        };
        self.dest = (
            dest.0.clamp(self.lon_range.0, self.lon_range.1),
            dest.1.clamp(self.lat_range.0, self.lat_range.1),
        );
        self.speed_kmh = self.rng.gen_range(15.0..70.0);
        // Passenger turnover happens at trip boundaries.
        self.occupied = self.rng.gen_bool(0.6);
        self.passengers = if self.occupied {
            self.rng.gen_range(1..=4)
        } else {
            0
        };
    }

    fn step(&mut self) {
        let dt =
            (self.interval + self.rng.gen_range(-self.interval / 3..=self.interval / 3)).max(1);
        self.time += dt;
        #[allow(clippy::cast_precision_loss)]
        let dist_deg = self.speed_kmh / 3600.0 * dt as f64 * DEG_PER_KM;
        let (dx, dy) = (self.dest.0 - self.x, self.dest.1 - self.y);
        let to_go = (dx * dx + dy * dy).sqrt();
        if to_go <= dist_deg {
            self.x = self.dest.0;
            self.y = self.dest.1;
            self.pick_destination();
        } else {
            // Heading noise models streets not being straight lines.
            let jitter = self.rng.gen_range(-0.2..0.2);
            let (ux, uy) = (dx / to_go, dy / to_go);
            self.x += dist_deg * (ux - jitter * uy);
            self.y += dist_deg * (uy + jitter * ux);
            self.x = self.x.clamp(self.lon_range.0, self.lon_range.1);
            self.y = self.y.clamp(self.lat_range.0, self.lat_range.1);
        }
    }

    fn heading(&self) -> f32 {
        let (dx, dy) = (self.dest.0 - self.x, self.dest.1 - self.y);
        let deg = dy.atan2(dx).to_degrees();
        // Convert math angle (CCW from east) to compass (CW from north).
        #[allow(clippy::cast_possible_truncation)]
        let compass = (90.0 - deg).rem_euclid(360.0) as f32;
        compass
    }
}

impl Iterator for TaxiTrace {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rec = Record {
            oid: self.oid,
            time: self.time,
            x: quantize(self.x),
            y: quantize(self.y),
            #[allow(clippy::cast_possible_truncation)]
            speed: (self.speed_kmh * self.rng.gen_range(0.85..1.15)) as f32,
            heading: self.heading(),
            occupied: self.occupied,
            passengers: self.passengers,
        };
        self.step();
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FleetConfig::small().generate();
        let b = FleetConfig::small().generate();
        assert_eq!(a, b);
        let mut other = FleetConfig::small();
        other.seed ^= 1;
        assert_ne!(a, other.generate());
    }

    #[test]
    fn trace_is_independent_of_fleet_size() {
        let config = FleetConfig::small();
        let mut bigger = config.clone();
        bigger.num_taxis += 50;
        let a: Vec<Record> = config.taxi_trace(7).collect();
        let b: Vec<Record> = bigger.taxi_trace(7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn records_stay_in_universe() {
        let config = FleetConfig::small();
        let u = config.universe();
        let batch = config.generate();
        assert_eq!(batch.len() as u64, config.total_records());
        for i in 0..batch.len() {
            assert!(
                u.contains_point(&batch.point(i)),
                "record {i} out of universe"
            );
        }
    }

    #[test]
    fn per_taxi_times_are_strictly_increasing() {
        let config = FleetConfig::small();
        let trace: Vec<Record> = config.taxi_trace(3).collect();
        for w in trace.windows(2) {
            assert!(w[1].time > w[0].time);
            assert_eq!(w[0].oid, 3);
        }
    }

    #[test]
    fn consecutive_fixes_are_spatially_close() {
        let config = FleetConfig::small();
        let trace: Vec<Record> = config.taxi_trace(0).collect();
        for w in trace.windows(2) {
            let d = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
            // 70 km/h for ~40 s ≈ 0.8 km ≈ 0.008°; leave generous margin.
            assert!(d < 0.03, "jump of {d} degrees between fixes");
        }
    }

    #[test]
    fn traces_cluster_around_hotspots() {
        let config = FleetConfig::small();
        let hotspots = config.hotspots();
        let batch = config.generate();
        let radius = 0.15; // degrees
        let near = (0..batch.len())
            .filter(|&i| {
                hotspots.iter().any(|&(hx, hy)| {
                    let d = ((batch.xs[i] - hx).powi(2) + (batch.ys[i] - hy).powi(2)).sqrt();
                    d < radius
                })
            })
            .count();
        // Uniform records would put ~π r² k / area ≈ 10% near hotspots;
        // the mobility model should concentrate far more than that.
        let frac = near as f64 / batch.len() as f64;
        assert!(frac > 0.35, "only {frac:.2} of records near hotspots");
    }

    #[test]
    fn attributes_are_plausible() {
        let batch = FleetConfig::small().generate();
        for r in batch.iter() {
            assert!((0.0..=140.0).contains(&r.speed), "speed {}", r.speed);
            assert!((0.0..360.0).contains(&r.heading), "heading {}", r.heading);
            assert_eq!(r.occupied, r.passengers > 0);
            assert!(r.passengers <= 4);
        }
    }

    #[test]
    fn coordinates_are_quantized_like_gps() {
        let batch = FleetConfig::small().generate();
        for i in 0..batch.len().min(1000) {
            let x = batch.xs[i];
            assert!(
                (x / QUANTUM - (x / QUANTUM).round()).abs() < 1e-6,
                "x {x} not on the 1e-6 grid"
            );
        }
    }

    #[test]
    fn paper_scale_matches_envelope() {
        let c = FleetConfig::paper_scale();
        assert_eq!(c.total_records(), 65_000_000);
        assert!(c.num_taxis >= 4_000);
    }
}
