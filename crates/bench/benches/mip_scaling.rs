//! Criterion bench: exact-MIP solve time as instance size grows
//! (Figure 3's microbenchmark).

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::select::{build_selection_problem, CostMatrix};
use blot_core::units::Bytes;
use blot_mip::MipSolver;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn instance(n: usize, m: usize, seed: u64) -> (CostMatrix, Bytes) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let quality: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..2.0)).collect();
    let costs = (0..n)
        .map(|_| {
            (0..m)
                .map(|j| quality[j] * rng.gen_range(1.0..100.0f64))
                .collect()
        })
        .collect();
    let storage: Vec<Bytes> = (0..m)
        .map(|_| Bytes::new(rng.gen_range(1.0..20.0)))
        .collect();
    let budget = storage.iter().copied().sum::<Bytes>() * 0.3;
    (
        CostMatrix {
            costs,
            weights: vec![1.0; n],
            storage,
        },
        budget,
    )
}

fn bench_mip(c: &mut Criterion) {
    let mut group = c.benchmark_group("mip_solve");
    group.sample_size(10);
    for (n, m) in [(4, 10), (8, 20), (16, 30)] {
        let (matrix, budget) = instance(n, m, 42);
        let problem = build_selection_problem(&matrix, budget);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{n}_r{m}")),
            &problem,
            |b, problem| {
                b.iter(|| MipSolver::default().solve(problem).expect("feasible"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mip);
criterion_main!(benches);
