//! Criterion bench: end-to-end query execution through the BLOT store
//! (routing + map-only scan + filter), per replica shape and query size.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::prelude::*;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn store_with_replicas() -> (BlotStore<MemBackend>, Cuboid) {
    let config = FleetConfig::small();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xEC);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(64, 8),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .expect("fine");
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .expect("coarse");
    (store, universe)
}

/// A denser single-replica store for the selective-scan case: 1 M
/// records on a fine `S16xT2` row-plain replica, so the per-record
/// filter loop (not per-query fixed overhead) dominates wall time.
fn selective_store() -> (BlotStore<MemBackend>, Cuboid) {
    let config = FleetConfig {
        num_taxis: 400,
        records_per_taxi: 2500,
        ..FleetConfig::small()
    };
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xEC);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 2),
                EncodingScheme::new(Layout::Row, Compression::Plain),
            ),
        )
        .expect("fine row-plain");
    (store, universe)
}

/// The selective query: "every record since timestamp T", with T just
/// past the last fix of most cells. The universe reserves 2× time
/// headroom for future ingest, so the trailing time slice of every
/// spatial cell is involved — but only the cells whose last fix lands
/// after T hold any matching bytes. This is the zone-map showcase: a
/// planner that trusts partition bounds decodes all 16 trailing units
/// (≈ 500 k rows); per-unit min/max metadata proves 12 of them end
/// before T. The trace is seed-deterministic, so T = 75 700 keeps that
/// 12-skipped/4-scanned split stable across runs.
fn selective_query(universe: &Cuboid) -> Cuboid {
    let t_hi = universe.max().t;
    Cuboid::new(
        Point::new(universe.min().x, universe.min().y, 75_700.0),
        Point::new(
            universe.max().x,
            universe.max().y,
            (t_hi - 1.0).max(75_701.0),
        ),
    )
}

fn bench_query(c: &mut Criterion) {
    let (store, universe) = store_with_replicas();
    let mut group = c.benchmark_group("store_query");
    group.sample_size(20);
    let queries = [
        (
            "tiny",
            QuerySize::new(0.05, 0.05, universe.extent(2) / 64.0),
        ),
        ("medium", QuerySize::new(0.5, 0.5, universe.extent(2) / 8.0)),
        ("huge", QuerySize::new(1.8, 1.8, universe.extent(2) * 0.9)),
    ];
    for (name, size) in queries {
        let q = Cuboid::from_centroid(universe.centroid(), size);
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| store.query(q).expect("query"));
        });
    }
    let (dense, dense_universe) = selective_store();
    let q = selective_query(&dense_universe);
    group.bench_with_input(BenchmarkId::from_parameter("selective"), &q, |b, q| {
        b.iter(|| dense.query(q).expect("selective query"));
    });
    group.finish();
}

fn bench_routing_only(c: &mut Criterion) {
    let (store, universe) = store_with_replicas();
    let q = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(0.5, 0.5, universe.extent(2) / 8.0),
    );
    c.bench_function("route", |b| b.iter(|| store.route(&q)));
}

criterion_group!(benches, bench_query, bench_routing_only);
criterion_main!(benches);
