//! Criterion bench: end-to-end query execution through the BLOT store
//! (routing + map-only scan + filter), per replica shape and query size.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::prelude::*;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn store_with_replicas() -> (BlotStore<MemBackend>, Cuboid) {
    let config = FleetConfig::small();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xEC);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(64, 8),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .expect("fine");
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .expect("coarse");
    (store, universe)
}

fn bench_query(c: &mut Criterion) {
    let (store, universe) = store_with_replicas();
    let mut group = c.benchmark_group("store_query");
    group.sample_size(20);
    let queries = [
        (
            "tiny",
            QuerySize::new(0.05, 0.05, universe.extent(2) / 64.0),
        ),
        ("medium", QuerySize::new(0.5, 0.5, universe.extent(2) / 8.0)),
        ("huge", QuerySize::new(1.8, 1.8, universe.extent(2) * 0.9)),
    ];
    for (name, size) in queries {
        let q = Cuboid::from_centroid(universe.centroid(), size);
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| store.query(q).expect("query"));
        });
    }
    group.finish();
}

fn bench_routing_only(c: &mut Criterion) {
    let (store, universe) = store_with_replicas();
    let q = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(0.5, 0.5, universe.extent(2) / 8.0),
    );
    c.bench_function("route", |b| b.iter(|| store.route(&q)));
}

criterion_group!(benches, bench_query, bench_routing_only);
criterion_main!(benches);
