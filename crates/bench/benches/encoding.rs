//! Criterion bench: encode/decode throughput of every encoding scheme
//! (the microbenchmark behind Tables I and II).

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::EncodingScheme;
use blot_model::RecordBatch;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn partition_batch() -> RecordBatch {
    // One realistic storage-unit's worth of records.
    let mut c = FleetConfig::small();
    c.num_taxis = 64;
    c.records_per_taxi = 256;
    c.generate()
}

fn bench_encode(c: &mut Criterion) {
    let batch = partition_batch();
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.sample_size(20);
    for scheme in EncodingScheme::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme),
            &scheme,
            |b, &scheme| b.iter(|| scheme.encode(&batch)),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let batch = partition_batch();
    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.sample_size(20);
    for scheme in EncodingScheme::all() {
        let bytes = scheme.encode(&batch);
        group.bench_with_input(BenchmarkId::from_parameter(scheme), &bytes, |b, bytes| {
            b.iter(|| scheme.decode(bytes).expect("decode"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
