//! Criterion bench: the selection pipeline on a paper-shaped instance —
//! matrix estimation, dominance pruning, greedy, and warm-started MIP.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::EncodingScheme;
use blot_core::cost::CostModel;
use blot_core::prelude::*;
use blot_core::select::{prune_dominated, select_greedy, select_mip};
use blot_mip::MipSolver;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, Criterion};

struct Setup {
    matrix: CostMatrix,
    budget: Bytes,
}

fn setup() -> Setup {
    let config = FleetConfig::small();
    let sample = config.generate();
    let universe = config.universe();
    let model = CostModel::calibrate(&EnvProfile::cloud_object_store(), &sample, 0xBE);
    let specs = vec![
        SchemeSpec::new(16, 16),
        SchemeSpec::new(16, 64),
        SchemeSpec::new(64, 32),
        SchemeSpec::new(256, 16),
        SchemeSpec::new(256, 64),
    ];
    let candidates = ReplicaConfig::grid(&specs, &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&universe);
    let matrix =
        CostMatrix::estimate_scaled(&model, &workload, &candidates, &sample, universe, 65e6);
    let budget = 3.0 * matrix.storage[matrix.optimal_single().0];
    Setup { matrix, budget }
}

fn bench_selection(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("prune_dominated", |b| b.iter(|| prune_dominated(&s.matrix)));
    group.bench_function("greedy", |b| b.iter(|| select_greedy(&s.matrix, s.budget)));
    group.bench_function("mip_warm_started", |b| {
        b.iter(|| select_mip(&s.matrix, s.budget, &MipSolver::default()).expect("mip"));
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
