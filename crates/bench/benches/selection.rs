//! Criterion bench: the selection pipeline on a paper-shaped instance —
//! matrix estimation, dominance pruning, greedy, and warm-started MIP.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::EncodingScheme;
use blot_core::cost::CostModel;
use blot_core::prelude::*;
use blot_core::select::{prune_dominated, select_greedy, select_greedy_reference, select_mip};
use blot_mip::MipSolver;
use blot_storage::ScanExecutor;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, Criterion};

struct Setup {
    model: CostModel,
    workload: Workload,
    candidates: Vec<ReplicaConfig>,
    sample: RecordBatch,
    universe: Cuboid,
    matrix: CostMatrix,
    budget: Bytes,
}

fn setup() -> Setup {
    let config = FleetConfig::small();
    let sample = config.generate();
    let universe = config.universe();
    let model = CostModel::calibrate(&EnvProfile::cloud_object_store(), &sample, 0xBE);
    let specs = vec![
        SchemeSpec::new(16, 16),
        SchemeSpec::new(16, 64),
        SchemeSpec::new(64, 32),
        SchemeSpec::new(256, 16),
        SchemeSpec::new(256, 64),
    ];
    let candidates = ReplicaConfig::grid(&specs, &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&universe);
    let matrix =
        CostMatrix::estimate_scaled(&model, &workload, &candidates, &sample, universe, 65e6);
    let budget = 3.0 * matrix.storage[matrix.optimal_single().0];
    Setup {
        model,
        workload,
        candidates,
        sample,
        universe,
        matrix,
        budget,
    }
}

/// A dense synthetic instance (200 queries × 64 candidates) sized so the
/// lazy evaluation actually has room to skip work; the paper-shaped
/// instance above is small enough that both variants are microseconds.
fn synthetic_matrix(queries: usize, candidates: usize) -> (CostMatrix, Bytes) {
    // Deterministic LCG so the bench needs no RNG dependency.
    let mut state: u64 = 0xCE1F_2026;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 33) as f64 / f64::from(1u32 << 31)
    };
    let costs: Vec<Vec<f64>> = (0..queries)
        .map(|_| (0..candidates).map(|_| 1.0 + 499.0 * next()).collect())
        .collect();
    let weights: Vec<f64> = (0..queries).map(|_| 0.5 + 3.5 * next()).collect();
    let storage: Vec<Bytes> = (0..candidates)
        .map(|_| Bytes::new(1.0 + 29.0 * next()))
        .collect();
    let budget = storage.iter().copied().sum::<Bytes>() * 0.4;
    (
        CostMatrix {
            costs,
            weights,
            storage,
        },
        budget,
    )
}

fn bench_selection(c: &mut Criterion) {
    let s = setup();
    let (big, big_budget) = synthetic_matrix(200, 64);
    let pool = ScanExecutor::with_default_parallelism();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("prune_dominated", |b| b.iter(|| prune_dominated(&s.matrix)));
    group.bench_function("greedy", |b| b.iter(|| select_greedy(&s.matrix, s.budget)));
    group.bench_function("greedy_lazy_200x64", |b| {
        b.iter(|| select_greedy(&big, big_budget));
    });
    group.bench_function("greedy_reference_200x64", |b| {
        b.iter(|| select_greedy_reference(&big, big_budget));
    });
    group.bench_function("mip_warm_started", |b| {
        b.iter(|| select_mip(&s.matrix, s.budget, &MipSolver::default()).expect("mip"));
    });
    group.bench_function("matrix_estimate_serial", |b| {
        b.iter(|| {
            CostMatrix::estimate_scaled(
                &s.model,
                &s.workload,
                &s.candidates,
                &s.sample,
                s.universe,
                65e6,
            )
        });
    });
    group.bench_function("matrix_estimate_pooled", |b| {
        b.iter(|| {
            CostMatrix::estimate_scaled_on(
                &pool,
                &s.model,
                &s.workload,
                &s.candidates,
                &s.sample,
                s.universe,
                65e6,
            )
            .expect("pooled estimate")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
