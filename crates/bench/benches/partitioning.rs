//! Criterion bench: k-d scheme construction, partitioning-index lookup
//! and the Equation 11 expected-involvement computation.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::cost::CostModel;
use blot_geo::{Cuboid, QuerySize};
use blot_index::{PartitioningScheme, SchemeSpec};
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_build(c: &mut Criterion) {
    let config = FleetConfig::small();
    let sample = config.generate();
    let universe = config.universe();
    let mut group = c.benchmark_group("kd_build");
    group.sample_size(10);
    for spec in [
        SchemeSpec::new(16, 16),
        SchemeSpec::new(256, 32),
        SchemeSpec::new(1024, 64),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            b.iter(|| PartitioningScheme::build(&sample, universe, spec));
        });
    }
    group.finish();
}

fn bench_involved(c: &mut Criterion) {
    let config = FleetConfig::small();
    let sample = config.generate();
    let universe = config.universe();
    let scheme = PartitioningScheme::build(&sample, universe, SchemeSpec::new(1024, 64));
    let query = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(0.3, 0.3, universe.extent(2) / 8.0),
    );
    let mut group = c.benchmark_group("involved_lookup");
    group.bench_function("tree_walk", |b| b.iter(|| scheme.involved(&query)));
    group.bench_function("full_scan", |b| b.iter(|| scheme.involved_scan(&query)));
    group.finish();
}

fn bench_expected_involved(c: &mut Criterion) {
    let config = FleetConfig::small();
    let sample = config.generate();
    let universe = config.universe();
    let mut group = c.benchmark_group("expected_involved_eq11");
    group.sample_size(20);
    for spec in [SchemeSpec::new(64, 16), SchemeSpec::new(1024, 64)] {
        let scheme = PartitioningScheme::build(&sample, universe, spec);
        let size = QuerySize::new(0.3, 0.3, universe.extent(2) / 8.0);
        group.bench_with_input(BenchmarkId::from_parameter(spec), &scheme, |b, scheme| {
            b.iter(|| CostModel::expected_involved(scheme, size));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_involved,
    bench_expected_involved
);
criterion_main!(benches);
