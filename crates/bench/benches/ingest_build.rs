//! Criterion bench: replica build and ingest throughput — the
//! unit-granular encode/decode paths that run through the shared
//! scan-executor pool.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::prelude::*;
use blot_model::RecordBatch;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn dataset() -> (RecordBatch, Cuboid, CostModel) {
    let config = FleetConfig::small();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0x1B);
    (data, universe, model)
}

fn fresh_store(universe: Cuboid, model: &CostModel) -> BlotStore<MemBackend> {
    BlotStore::new(
        MemBackend::new(),
        EnvProfile::local_cluster(),
        universe,
        model.clone(),
    )
}

fn bench_build(c: &mut Criterion) {
    let (data, universe, model) = dataset();
    let mut group = c.benchmark_group("ingest_build");
    group.sample_size(10);
    group.bench_function("build_replica", |b| {
        b.iter(|| {
            let mut store = fresh_store(universe, &model);
            store
                .build_replica(
                    &data,
                    ReplicaConfig::new(
                        SchemeSpec::new(64, 8),
                        EncodingScheme::new(Layout::Row, Compression::Deflate),
                    ),
                )
                .expect("build");
            store
        });
    });
    group.bench_function("ingest_batch", |b| {
        let mut store = fresh_store(universe, &model);
        for (spec, enc) in [
            (
                SchemeSpec::new(64, 8),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
            (
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        ] {
            store
                .build_replica(&data, ReplicaConfig::new(spec, enc))
                .expect("build");
        }
        // A small tail of the dataset re-offered as fresh points: every
        // iteration rewrites the touched units of both replicas.
        let mut batch = RecordBatch::new();
        for i in 0..1000.min(data.len()) {
            batch.push(data.get(i));
        }
        b.iter(|| store.ingest(&batch).expect("ingest"));
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
