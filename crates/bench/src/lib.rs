//! Experiment harness regenerating every table and figure of
//! *Exploring the Use of Diverse Replicas for Big Location Tracking
//! Data* (Ding et al., ICDCS 2014).
//!
//! Each experiment is a function returning a serialisable result struct;
//! the `repro` binary runs them, prints paper-shaped tables and writes
//! JSON next to them. The mapping to the paper:
//!
//! | function      | reproduces | paper section |
//! |---------------|------------|---------------|
//! | [`fig2`]      | Figure 2 — the partition-granularity tension | §II-D |
//! | [`table1`]    | Table I — compression ratios | §V-A |
//! | [`table2`]    | Table II — measured `1/ScanRate`, `ExtraCost` | §V-B |
//! | [`fig3`]      | Figure 3 — MIP solve time scaling | §V-C |
//! | [`fig4`]      | Figure 4 — cost vs storage budget | §V-C |
//! | [`fig5`]      | Figure 5 — `Cost(q, p)` vs partition size + fits | §V-B |
//! | [`fig6`]      | Figure 6 — per-query cost at 4 data scales | §V-C |
//!
//! Absolute numbers are simulated (see `DESIGN.md` for the substitution
//! table); the assertions baked into `EXPERIMENTS.md` are about *shape*:
//! orderings, ratios and crossovers.

// Experiment drivers run on data they generate themselves; a panic here
// is a bug in the harness, not a recoverable runtime condition, so the
// workspace panic-freedom lints are waived for this crate.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod json_out;
mod table1;
mod table2;

pub use context::{Context, Scale};
pub use fig2::{fig2, Fig2Case, Fig2Result};
pub use fig3::{fig3, Fig3Point, Fig3Result};
pub use fig4::{fig4, Fig4Result, Fig4Row};
pub use fig5::{fig5, Fig5Env, Fig5Result};
pub use fig6::{fig6, Fig6Result, Fig6Scale};
pub use table1::{table1, Table1Result};
pub use table2::{table2, Table2Result, Table2Row};

/// Formats a simulated-millisecond quantity compactly.
#[must_use]
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1e6 {
        format!("{:.2}e3 s", ms / 1e6)
    } else if ms >= 1e3 {
        format!("{:.1} s", ms / 1e3)
    } else {
        format!("{ms:.1} ms")
    }
}
