//! Figure 6: per-query weighted cost of Single / Greedy / MIP / Ideal
//! as the dataset grows from 3.7 GB to 3.7 TB.

use blot_codec::EncodingScheme;
use blot_core::prelude::*;
use blot_core::select::{select_greedy, select_mip, select_single, Selection};
use blot_mip::MipSolver;
use std::time::Duration;

use crate::Context;

/// Results at one dataset scale.
#[derive(Debug)]
pub struct Fig6Scale {
    /// Nominal dataset size in GB (the paper's 3.7 / 37 / 370 / 3700).
    pub gb: f64,
    /// Modelled record count.
    pub records: f64,
    /// Per-query weighted cost (ms) of each strategy, indexed q1..q8.
    pub single: Vec<f64>,
    /// Greedy per-query weighted costs.
    pub greedy: Vec<f64>,
    /// MIP per-query weighted costs.
    pub mip: Vec<f64>,
    /// Ideal per-query weighted costs.
    pub ideal: Vec<f64>,
    /// Total-cost approximation ratios vs ideal: (single, greedy, mip).
    pub ratios: (f64, f64, f64),
}

/// The four-scale sweep.
#[derive(Debug)]
pub struct Fig6Result {
    /// One entry per dataset scale.
    pub scales: Vec<Fig6Scale>,
}

fn per_query_costs(matrix: &CostMatrix, selection: &Selection) -> Vec<f64> {
    (0..matrix.n_queries())
        .map(|i| {
            let best = selection
                .chosen
                .iter()
                .map(|&j| matrix.costs[i][j])
                .fold(f64::INFINITY, f64::min);
            matrix.weights[i] * best
        })
        .collect()
}

fn ideal_per_query(matrix: &CostMatrix) -> Vec<f64> {
    let all: Vec<usize> = (0..matrix.n_candidates()).collect();
    let sel = Selection {
        chosen: all,
        workload_cost: 0.0,
        storage: blot_core::units::Bytes::ZERO,
        proven_optimal: false,
        stats: None,
    };
    per_query_costs(matrix, &sel)
}

/// Runs the scale sweep in the cloud environment. The record count is
/// scaled analytically from the calibration sample, exactly as the
/// paper scales from its 3.7 GB sample to the full dataset.
#[must_use]
pub fn fig6(ctx: &Context) -> Fig6Result {
    let candidates = ReplicaConfig::grid(&ctx.spec_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&ctx.universe);
    let solver = MipSolver {
        max_nodes: 500_000,
        time_limit: Some(Duration::from_secs(180)),
    };
    let scales = [3.7, 37.0, 370.0, 3_700.0]
        .into_iter()
        .map(|gb| {
            let records = 65e6 * (gb / 3.7);
            let matrix = CostMatrix::estimate_scaled(
                &ctx.cloud_model,
                &workload,
                &candidates,
                &ctx.sample,
                ctx.universe,
                records,
            );
            let budget = 3.0 * matrix.storage[matrix.optimal_single().0];
            let single = select_single(&matrix, budget);
            let greedy = select_greedy(&matrix, budget);
            let mip = select_mip(&matrix, budget, &solver).expect("mip");
            let ideal = ideal_per_query(&matrix);
            let ideal_total: f64 = ideal.iter().sum();
            Fig6Scale {
                gb,
                records,
                ratios: (
                    single.workload_cost / ideal_total,
                    greedy.workload_cost / ideal_total,
                    mip.workload_cost / ideal_total,
                ),
                single: per_query_costs(&matrix, &single),
                greedy: per_query_costs(&matrix, &greedy),
                mip: per_query_costs(&matrix, &mip),
                ideal,
            }
        })
        .collect();
    Fig6Result { scales }
}

impl Fig6Result {
    /// Renders one block per scale, like the figure's four panels.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.scales {
            out.push_str(&format!(
                "  data size {} GB ({:.1e} records) — approximation ratios: Single {:.2}, Greedy {:.2}, MIP {:.2}\n",
                s.gb, s.records, s.ratios.0, s.ratios.1, s.ratios.2
            ));
            out.push_str(
                "    query   Single       Greedy       MIP          Ideal   (weighted ms)\n",
            );
            for i in 0..s.ideal.len() {
                out.push_str(&format!(
                    "    q{:<5} {:>12.0} {:>12.0} {:>12.0} {:>12.0}\n",
                    i + 1,
                    s.single[i],
                    s.greedy[i],
                    s.mip[i],
                    s.ideal[i]
                ));
            }
        }
        out
    }

    /// Shape checks of the paper's Figure 6: MIP and greedy track the
    /// ideal (greedy within ~1.3), the single replica falls further
    /// behind as data grows, and per-query MIP costs are never below
    /// ideal.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        let ratios_ok = self.scales.iter().all(|s| {
            s.ratios.2 <= s.ratios.1 + 1e-9 && s.ratios.1 <= s.ratios.0 + 1e-9 && s.ratios.1 < 1.35
        });
        let single_degrades = {
            let first = self.scales.first().map(|s| s.ratios.0).unwrap_or(1.0);
            let last = self.scales.last().map(|s| s.ratios.0).unwrap_or(1.0);
            last >= first * 0.95
        };
        let sound = self
            .scales
            .iter()
            .all(|s| s.mip.iter().zip(&s.ideal).all(|(m, i)| *m >= *i - 1e-6));
        ratios_ok && single_degrades && sound
    }
}
