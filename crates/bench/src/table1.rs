//! Table I: compression ratio of every encoding scheme.

use blot_codec::{Compression, EncodingScheme, Layout};

use crate::Context;

/// Compression ratios relative to the uncompressed row layout, in the
/// paper's Table I arrangement.
#[derive(Debug)]
pub struct Table1Result {
    /// `(scheme name, ratio)` for all seven schemes.
    pub ratios: Vec<(String, f64)>,
}

/// Measures Table I on the context's sample via the calibrated model
/// (ratios are environment-independent; the cloud model is used).
#[must_use]
pub fn table1(ctx: &Context) -> Table1Result {
    let ratios = EncodingScheme::all()
        .into_iter()
        .map(|s| (s.to_string(), ctx.cloud_model.compression_ratio(s)))
        .collect();
    Table1Result { ratios }
}

impl Table1Result {
    /// Renders the paper's two-row table (Row / Col × codec).
    #[must_use]
    pub fn render(&self) -> String {
        let get = |layout: Layout, comp: Compression| -> String {
            let name = EncodingScheme::new(layout, comp).to_string();
            self.ratios
                .iter()
                .find(|(n, _)| *n == name)
                .map_or_else(|| "  N/A".to_owned(), |(_, r)| format!("{r:.3}"))
        };
        let mut out = String::new();
        out.push_str("        | Uncompressed |     Lzf      |   Deflate    |     Lzr\n");
        out.push_str("        |  (PLAIN)     |  (≈Snappy)   |  (≈Gzip)     |  (≈LZMA2)\n");
        out.push_str(&format!(
            "    Row |       {} |       {} |       {} |       {}\n",
            get(Layout::Row, Compression::Plain),
            get(Layout::Row, Compression::Lzf),
            get(Layout::Row, Compression::Deflate),
            get(Layout::Row, Compression::Lzr),
        ));
        out.push_str(&format!(
            "    Col |          N/A |       {} |       {} |       {}\n",
            get(Layout::Column, Compression::Lzf),
            get(Layout::Column, Compression::Deflate),
            get(Layout::Column, Compression::Lzr),
        ));
        out
    }

    /// The shape checks EXPERIMENTS.md relies on: ratios shrink with
    /// codec strength and columns beat rows.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        let get = |l, c| {
            let name = EncodingScheme::new(l, c).to_string();
            self.ratios
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, r)| *r)
        };
        let (Some(rp), Some(rl), Some(rd), Some(rz)) = (
            get(Layout::Row, Compression::Plain),
            get(Layout::Row, Compression::Lzf),
            get(Layout::Row, Compression::Deflate),
            get(Layout::Row, Compression::Lzr),
        ) else {
            return false;
        };
        let cols_beat_rows = [Compression::Lzf, Compression::Deflate, Compression::Lzr]
            .into_iter()
            .all(|c| {
                get(Layout::Column, c)
                    .zip(get(Layout::Row, c))
                    .is_some_and(|(cc, rr)| cc < rr)
            });
        (rp - 1.0).abs() < 1e-9 && rl < rp && rd < rl && rz <= rd * 1.05 && cols_beat_rows
    }
}
