//! Figure 2's illustrative table (§II-D): the same query against three
//! partitioning granularities, comparing involved-partition counts and
//! the share of data scanned.
//!
//! The paper's figure shows a query over three layouts with
//! `Np = 4 / 3 / 8` and `S = 100% / 30% / 50%` and concludes that the
//! middle case wins because *both* its costs are low while the other
//! two each minimise only one. This experiment rebuilds that tension on
//! real (synthetic-fleet) data: a mid-sized query against a coarse, a
//! medium and a fine k-d scheme.

use blot_codec::{Compression, EncodingScheme, Layout};
use blot_geo::Cuboid;
use blot_index::{PartitioningScheme, SchemeSpec};

use crate::Context;

/// One partitioning case of the comparison.
#[derive(Debug)]
pub struct Fig2Case {
    /// Scheme label.
    pub scheme: String,
    /// Total partitions.
    pub partitions: usize,
    /// Involved partitions `Np`.
    pub involved: usize,
    /// Share of the dataset's records inside involved partitions.
    pub scanned_fraction: f64,
    /// Estimated query cost (cloud model, 370 GB scale) in ms.
    pub est_cost_ms: f64,
}

/// The three-case comparison.
#[derive(Debug)]
pub struct Fig2Result {
    /// Coarse / medium / fine, in that order.
    pub cases: Vec<Fig2Case>,
}

/// Runs the comparison with a query covering ~1/3 of each spatial axis
/// and ~1/4 of the time axis.
#[must_use]
pub fn fig2(ctx: &Context) -> Fig2Result {
    let u = ctx.universe;
    let query = Cuboid::from_centroid(
        u.centroid(),
        blot_geo::QuerySize::new(u.extent(0) / 3.0, u.extent(1) / 3.0, u.extent(2) / 4.0),
    );
    let enc = EncodingScheme::new(Layout::Row, Compression::Plain);
    let total: usize = ctx.sample.len();
    let cases = [
        SchemeSpec::new(4, 2),
        SchemeSpec::new(16, 8),
        SchemeSpec::new(256, 32),
    ]
    .into_iter()
    .map(|spec| {
        let scheme = PartitioningScheme::build(&ctx.sample, u, spec);
        let involved = scheme.involved(&query);
        let scanned: usize = involved
            .iter()
            .map(|&pid| scheme.partitions()[pid].count)
            .sum();
        let est_cost_ms = ctx
            .cloud_model
            .cost_with_np(
                blot_core::units::PartitionCount::of(involved.len()),
                scheme.len(),
                enc,
                ctx.dataset_records * 100.0,
            )
            .get();
        Fig2Case {
            scheme: spec.to_string(),
            partitions: scheme.len(),
            involved: involved.len(),
            #[allow(clippy::cast_precision_loss)]
            scanned_fraction: scanned as f64 / total as f64,
            est_cost_ms,
        }
    })
    .collect();
    Fig2Result { cases }
}

impl Fig2Result {
    /// Renders the paper's little Np / S table, plus the modelled cost.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("    scheme      partitions    Np    scanned    est. cost (370 GB, cloud)\n");
        for c in &self.cases {
            out.push_str(&format!(
                "    {:<11} {:>10} {:>5} {:>9.1}%    {}\n",
                c.scheme,
                c.partitions,
                c.involved,
                c.scanned_fraction * 100.0,
                crate::fmt_ms(c.est_cost_ms)
            ));
        }
        out
    }

    /// Shape check (the paper's point): going finer strictly increases
    /// `Np` and strictly decreases the scanned share, so neither extreme
    /// can win on both axes.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        self.cases
            .windows(2)
            .all(|w| w[1].involved > w[0].involved && w[1].scanned_fraction < w[0].scanned_fraction)
    }
}
