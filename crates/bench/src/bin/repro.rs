//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p blot-bench --bin repro -- --all
//! cargo run --release -p blot-bench --bin repro -- --table1 --fig4 --quick
//! ```
//!
//! Results are printed as paper-shaped tables and written as JSON under
//! `results/`.

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_bench::{fig2, fig3, fig4, fig5, fig6, table1, table2, Context, Scale};
use std::time::Instant;

fn write_json(name: &str, value: &impl blot_json::ToJson) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/; skipping JSON output");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json().pretty()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let all = has("--all") || args.iter().all(|a| a == "--quick");
    let scale = if has("--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };

    if args.iter().any(|a| {
        !matches!(
            a.as_str(),
            "--all"
                | "--quick"
                | "--table1"
                | "--table2"
                | "--fig2"
                | "--fig3"
                | "--fig4"
                | "--fig5"
                | "--fig6"
        )
    }) {
        eprintln!(
            "usage: repro [--all] [--quick] [--table1] [--table2] [--fig2] [--fig3] [--fig4] [--fig5] [--fig6]"
        );
        std::process::exit(2);
    }

    println!(
        "building context ({} scale: sample generation + 2 calibrations)…",
        if scale == Scale::Quick {
            "quick"
        } else {
            "full"
        }
    );
    let t0 = Instant::now();
    let ctx = Context::new(scale);
    println!(
        "context ready in {:.1}s — {} sample records\n",
        t0.elapsed().as_secs_f64(),
        ctx.sample.len()
    );

    let mut shapes: Vec<(&str, bool)> = Vec::new();

    if all || has("--table1") {
        let t = Instant::now();
        let r = table1(&ctx);
        println!(
            "== Table I — compression ratios ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("table1", r.shape_holds()));
        write_json("table1", &r);
        println!();
    }
    if all || has("--table2") {
        let t = Instant::now();
        let r = table2(&ctx);
        println!(
            "== Table II — ScanRate / ExtraCost ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("table2", r.shape_holds()));
        write_json("table2", &r);
        println!();
    }
    if all || has("--fig2") {
        let t = Instant::now();
        let r = fig2(&ctx);
        println!(
            "== Figure 2 — partition-granularity tension ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("fig2", r.shape_holds()));
        write_json("fig2", &r);
        println!();
    }
    if all || has("--fig3") {
        let t = Instant::now();
        let r = fig3(&ctx);
        println!(
            "== Figure 3 — MIP solve-time scaling ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("fig3", r.shape_holds()));
        write_json("fig3", &r);
        println!();
    }
    if all || has("--fig4") {
        let t = Instant::now();
        let r = fig4(&ctx);
        println!(
            "== Figure 4 — cost vs storage budget ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("fig4", r.shape_holds()));
        write_json("fig4", &r);
        println!();
    }
    if all || has("--fig5") {
        let t = Instant::now();
        let r = fig5(&ctx);
        println!(
            "== Figure 5 — cost-model fit ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("fig5", r.shape_holds()));
        write_json("fig5", &r);
        println!();
    }
    if all || has("--fig6") {
        let t = Instant::now();
        let r = fig6(&ctx);
        println!(
            "== Figure 6 — data-size sweep ({:.1}s) ==",
            t.elapsed().as_secs_f64()
        );
        print!("{}", r.render());
        shapes.push(("fig6", r.shape_holds()));
        write_json("fig6", &r);
        println!();
    }

    println!("shape summary (paper-vs-measured qualitative agreement):");
    let mut ok = true;
    for (name, holds) in &shapes {
        println!("  {name:<8} {}", if *holds { "HOLDS" } else { "DIVERGES" });
        ok &= holds;
    }
    if !ok {
        std::process::exit(1);
    }
}
