//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. dominance pruning — MIP input size and solve time, optimum
//!    preserved;
//! 2. greedy warm-starting — branch & bound nodes with and without the
//!    incumbent seed;
//! 3. the Equation 11 grouped-query estimator — analytic expected
//!    involvement vs Monte-Carlo ground truth;
//! 4. partial replication (the paper's future work) — workload cost
//!    with and without partial candidates across budgets.
//!
//! ```sh
//! cargo run --release -p blot-bench --bin ablation
//! ```

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_bench::{Context, Scale};
use blot_codec::EncodingScheme;
use blot_core::cost::CostModel;
use blot_core::partial::{estimate_matrix, HotGroupedQuery, PartialCandidate};
use blot_core::prelude::*;
use blot_core::select::{build_selection_problem, prune_dominated, select_greedy, select_mip};
use blot_index::PartitioningScheme;
use blot_mip::MipSolver;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ctx = Context::new(if quick { Scale::Quick } else { Scale::Full });
    println!("context ready: {} sample records\n", ctx.sample.len());

    ablate_pruning(&ctx);
    ablate_warm_start(&ctx);
    ablate_eq11(&ctx);
    ablate_partial(&ctx);
}

fn paper_matrix(ctx: &Context) -> CostMatrix {
    let candidates = ReplicaConfig::grid(&ctx.spec_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&ctx.universe);
    // 100× the sample scale (the 370 GB point of Figure 6): at sample
    // scale the flat cost surface makes selection trivial and the
    // ablations uninformative.
    CostMatrix::estimate_scaled(
        &ctx.cloud_model,
        &workload,
        &candidates,
        &ctx.sample,
        ctx.universe,
        ctx.dataset_records * 100.0,
    )
}

fn submatrix(matrix: &CostMatrix, kept: &[usize]) -> CostMatrix {
    CostMatrix {
        costs: matrix
            .costs
            .iter()
            .map(|row| kept.iter().map(|&j| row[j]).collect())
            .collect(),
        weights: matrix.weights.clone(),
        storage: kept.iter().map(|&j| matrix.storage[j]).collect(),
    }
}

fn ablate_pruning(ctx: &Context) {
    println!("== ablation 1: dominance pruning (§III-C2) ==");
    let matrix = paper_matrix(ctx);
    let budget = 3.0 * matrix.storage[matrix.optimal_single().0];
    let solver = MipSolver::default();

    let t = Instant::now();
    let full = select_mip(&matrix, budget, &solver).expect("mip full");
    let full_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let kept = prune_dominated(&matrix);
    let prune_ms = t.elapsed().as_secs_f64() * 1e3;
    let sub = submatrix(&matrix, &kept);
    let t = Instant::now();
    let pruned = select_mip(&sub, budget, &solver).expect("mip pruned");
    let pruned_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "  candidates: {} → {} ({prune_ms:.1} ms to prune)",
        matrix.n_candidates(),
        kept.len()
    );
    println!(
        "  MIP on full set:   {full_ms:>9.1} ms, cost {:.3e}",
        full.workload_cost
    );
    println!(
        "  MIP on pruned set: {pruned_ms:>9.1} ms, cost {:.3e}",
        pruned.workload_cost
    );
    println!(
        "  optimum preserved: {}\n",
        (full.workload_cost - pruned.workload_cost).abs() < 1e-6 * full.workload_cost
    );
}

fn ablate_warm_start(_ctx: &Context) {
    println!("== ablation 2: greedy warm-start of branch & bound ==");
    // Real replica-selection matrices prune down to easy instances; the
    // warm-start earns its keep on hard synthetic ones (the regime of
    // Figure 3 where cold solves blow up). Same generator as fig3.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xAB1A);
    let (n, m) = (32, 30);
    let quality: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..2.0)).collect();
    let sub = CostMatrix {
        costs: (0..n)
            .map(|_| {
                (0..m)
                    .map(|j| quality[j] * rng.gen_range(1.0..100.0f64))
                    .collect()
            })
            .collect(),
        weights: vec![1.0; n],
        storage: (0..m)
            .map(|_| Bytes::new(rng.gen_range(1.0..20.0)))
            .collect(),
    };
    let budget = sub.storage.iter().copied().sum::<Bytes>() * 0.3;
    let problem = build_selection_problem(&sub, budget);
    let solver = MipSolver::default();

    let t = Instant::now();
    let cold = solver.solve(&problem).expect("cold solve");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    let greedy = select_greedy(&sub, budget);
    let mut seed = vec![0.0; problem.num_vars()];
    let m = sub.n_candidates();
    for &j in &greedy.chosen {
        seed[j] = 1.0;
    }
    for i in 0..sub.n_queries() {
        let best = greedy
            .chosen
            .iter()
            .copied()
            .min_by(|&a, &b| sub.costs[i][a].total_cmp(&sub.costs[i][b]))
            .expect("greedy non-empty");
        seed[m + i * m + best] = 1.0;
    }
    let t = Instant::now();
    let warm = solver
        .solve_seeded(&problem, Some(&seed))
        .expect("warm solve");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "  cold: {cold_ms:>9.1} ms, {:>7} nodes",
        cold.stats.nodes_explored
    );
    println!(
        "  warm: {warm_ms:>9.1} ms, {:>7} nodes",
        warm.stats.nodes_explored
    );
    println!(
        "  same optimum: {}\n",
        (cold.objective - warm.objective).abs() < 1e-9 * cold.objective.abs().max(1.0)
    );
}

fn ablate_eq11(ctx: &Context) {
    println!("== ablation 3: Equation 11 estimator vs Monte-Carlo ==");
    let spec = blot_index::SchemeSpec::new(256, 32);
    let scheme = PartitioningScheme::build(&ctx.sample, ctx.universe, spec);
    let workload = Workload::paper_synthetic(&ctx.universe);
    println!("  scheme {spec}: query   analytic Np   empirical Np   rel.err");
    let mut worst: f64 = 0.0;
    for (gi, (q, _)) in workload.entries().iter().enumerate() {
        let analytic = CostModel::expected_involved(&scheme, q.size).get();
        // Grid-sample centroid positions.
        let steps = 8;
        let mut total = 0usize;
        for ix in 0..steps {
            for iy in 0..steps {
                for it in 0..steps {
                    // Midpoint rule: uniform-measure cells, no corner bias.
                    let f = |k: usize| (k as f64 + 0.5) / steps as f64;
                    let range = q.at(&ctx.universe, f(ix), f(iy), f(it));
                    total += scheme.involved(&range).len();
                }
            }
        }
        let empirical = total as f64 / (steps * steps * steps) as f64;
        let rel = (analytic - empirical).abs() / empirical.max(1.0);
        worst = worst.max(rel);
        println!(
            "    q{:<22} {analytic:>11.2} {empirical:>14.2} {rel:>9.3}",
            gi + 1
        );
    }
    println!("  worst relative error: {worst:.3}\n");
}

fn ablate_partial(ctx: &Context) {
    println!("== ablation 4: partial replication (paper future work, §VII) ==");
    // The hot region: the densest cell of a coarse 4×4 spatial grid over
    // busy hours — small enough that a partial replica is much cheaper
    // than a full one.
    let u = ctx.universe;
    let (mut bx, mut by, mut best) = (0, 0, 0usize);
    for gx in 0..4 {
        for gy in 0..4 {
            let cell = Cuboid::new(
                Point::new(
                    u.min().x + u.extent(0) * f64::from(gx) / 4.0,
                    u.min().y + u.extent(1) * f64::from(gy) / 4.0,
                    u.min().t,
                ),
                Point::new(
                    u.min().x + u.extent(0) * f64::from(gx + 1) / 4.0,
                    u.min().y + u.extent(1) * f64::from(gy + 1) / 4.0,
                    u.max().t,
                ),
            );
            let n = ctx.sample.count_in_range(&cell);
            if n > best {
                best = n;
                bx = gx;
                by = gy;
            }
        }
    }
    let region = Cuboid::new(
        Point::new(
            u.min().x + u.extent(0) * f64::from(bx) / 4.0,
            u.min().y + u.extent(1) * f64::from(by) / 4.0,
            u.min().t,
        ),
        Point::new(
            u.min().x + u.extent(0) * f64::from(bx + 1) / 4.0,
            u.min().y + u.extent(1) * f64::from(by + 1) / 4.0,
            u.min().t + u.extent(2) * 0.5,
        ),
    );
    let shrunk = Cuboid::new(
        Point::new(
            region.min().x + region.extent(0) * 0.2,
            region.min().y + region.extent(1) * 0.2,
            region.min().t + region.extent(2) * 0.1,
        ),
        Point::new(
            region.max().x - region.extent(0) * 0.2,
            region.max().y - region.extent(1) * 0.2,
            region.max().t - region.extent(2) * 0.1,
        ),
    );
    let workload = vec![
        HotGroupedQuery {
            size: QuerySize::new(0.05, 0.05, u.extent(2) / 64.0),
            centroid_region: shrunk,
            weight: 200.0,
        },
        HotGroupedQuery {
            size: QuerySize::new(0.15, 0.15, u.extent(2) / 32.0),
            centroid_region: shrunk,
            weight: 50.0,
        },
        HotGroupedQuery {
            size: QuerySize::new(u.extent(0) / 2.0, u.extent(1) / 2.0, u.extent(2) / 2.0),
            centroid_region: u,
            weight: 1.0,
        },
    ];
    let configs = ReplicaConfig::grid(
        &[
            blot_index::SchemeSpec::new(4, 2),
            blot_index::SchemeSpec::new(16, 8),
            blot_index::SchemeSpec::new(64, 16),
        ],
        &EncodingScheme::all(),
    );
    let full_only: Vec<PartialCandidate> =
        configs.iter().map(|&c| PartialCandidate::full(c)).collect();
    let mut extended = full_only.clone();
    extended.extend(
        configs
            .iter()
            .map(|&c| PartialCandidate::partial(c, region)),
    );

    // Run at the 370 GB point of the Figure 6 sweep: partial replication
    // is a *big-data* lever — at sample scale ExtraTime dominates and no
    // layout choice matters (exactly as Figure 6a shows).
    let records = ctx.dataset_records * 100.0;
    let m_full = estimate_matrix(
        &ctx.cloud_model,
        &workload,
        &full_only,
        &ctx.sample,
        u,
        records,
    );
    let m_ext = estimate_matrix(
        &ctx.cloud_model,
        &workload,
        &extended,
        &ctx.sample,
        u,
        records,
    );
    let hot_frac = ctx.sample.count_in_range(&region) as f64 / ctx.sample.len() as f64;
    println!("  hot region holds {:.0}% of the records", hot_frac * 100.0);
    let reference = m_full.cheapest_storage();
    println!("  budget  full-only cost   with-partials cost   gain");
    let solver = MipSolver::default();
    for rel in [1.2, 1.5, 2.0, 3.0] {
        let budget = reference * rel;
        let a = select_mip(&m_full, budget, &solver)
            .expect("full-only")
            .workload_cost;
        let b = select_mip(&m_ext, budget, &solver)
            .expect("extended")
            .workload_cost;
        println!(
            "  {rel:>5.1}x {a:>16.3e} {b:>20.3e} {:>6.1}%",
            (1.0 - b / a) * 100.0
        );
    }
    println!();
}
