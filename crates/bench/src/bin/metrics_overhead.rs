//! Measures the cost of the observability layer on the query hot path.
//!
//! Runs a fixed, deterministic query workload against an in-memory
//! store and prints one JSON line with the per-round wall times. The
//! `cargo xtask metrics-overhead` guard builds this probe twice — with
//! metrics compiled in (default) and compiled out (`--features
//! obs-off`) — and fails if the instrumented minimum round time
//! exceeds the compiled-out one by more than 5%.
//!
//! ```sh
//! cargo run --release -p blot-bench --bin metrics_overhead
//! cargo run --release -p blot-bench --bin metrics_overhead --features obs-off
//! ```

// Bench/driver code runs on data it constructs; panics here indicate a
// harness bug, not a recoverable condition.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_precision_loss
)]

use blot_core::prelude::*;
use blot_json::Json;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;
use std::time::Instant;

const ROUNDS: usize = 12;
const QUERIES_PER_ROUND: usize = 40;

fn build_store() -> BlotStore<MemBackend> {
    let mut config = FleetConfig::small();
    config.num_taxis = 80;
    config.records_per_taxi = 200;
    config.seed = 0x0B5E;
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0x0B5E);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    store
}

/// One round: a fixed ladder of centroid queries of shrinking extent.
/// Every query runs through `query_traced`, so the instrumented build
/// pays the full tracing path — root span, per-stage children,
/// flight-recorder ring writes — and the guard's ratio bounds what
/// tracing costs, not just counters.
fn run_round(store: &BlotStore<MemBackend>) -> usize {
    let u = store.universe();
    let mut returned = 0;
    for k in 0..QUERIES_PER_ROUND {
        let f = 2.0 + k as f64 * 0.25;
        let q = Cuboid::from_centroid(
            u.centroid(),
            QuerySize::new(u.extent(0) / f, u.extent(1) / f, u.extent(2) / f),
        );
        returned += store.query_traced(&q, None).unwrap().records.len();
    }
    returned
}

fn main() {
    let store = build_store();
    // Warm-up: fault in units, warm caches, settle the pool.
    let checksum = run_round(&store);
    let mut round_ms = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let started = Instant::now();
        let got = run_round(&store);
        round_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(got, checksum, "workload must be deterministic");
    }
    round_ms.sort_by(f64::total_cmp);
    let min_ms = round_ms.first().copied().unwrap_or(0.0);
    let median_ms = round_ms.get(round_ms.len() / 2).copied().unwrap_or(0.0);
    let spans = store.recorder().recorded();
    if !blot_obs::enabled() {
        // The `off` feature must compile the whole trace layer to
        // zero-sized no-ops: no spans recorded, no bytes per handle.
        assert_eq!(spans, 0, "off build must record nothing");
        assert_eq!(std::mem::size_of::<blot_obs::FlightRecorder>(), 0);
        assert_eq!(std::mem::size_of::<blot_obs::TraceSpan>(), 0);
        assert_eq!(std::mem::size_of::<blot_obs::SpanHandle>(), 0);
    }
    let doc = Json::obj([
        ("enabled", Json::Bool(blot_obs::enabled())),
        ("rounds", Json::Num(ROUNDS as f64)),
        ("queries_per_round", Json::Num(QUERIES_PER_ROUND as f64)),
        ("min_ms", Json::Num(min_ms)),
        ("median_ms", Json::Num(median_ms)),
        ("spans", Json::Num(spans as f64)),
        ("checksum", Json::Num(checksum as f64)),
    ]);
    println!("{doc}");
}
