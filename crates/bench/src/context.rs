//! Shared experiment context: the data sample, universe and calibrated
//! cost models.

use blot_core::cost::{CalibrationConfig, CostModel};
use blot_geo::Cuboid;
use blot_model::RecordBatch;
use blot_storage::EnvProfile;
use blot_tracegen::FleetConfig;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: small sample, reduced grids, seconds per experiment.
    Quick,
    /// Paper-shaped: the 1M-record calibration sample, the full
    /// 25-spec × 7-scheme candidate grid, §V-B calibration shape.
    Full,
}

/// Everything the experiments share: deterministic sample data, the
/// universe, and one calibrated cost model per execution environment.
#[derive(Debug)]
pub struct Context {
    /// Run scale.
    pub scale: Scale,
    /// The data sample used for calibration and scheme construction.
    pub sample: RecordBatch,
    /// Spatio-temporal universe of the dataset.
    pub universe: Cuboid,
    /// The simulated Amazon-S3 + EMR environment.
    pub cloud: EnvProfile,
    /// The simulated local Hadoop cluster.
    pub local: EnvProfile,
    /// Cost model calibrated in `cloud`.
    pub cloud_model: CostModel,
    /// Cost model calibrated in `local`.
    pub local_model: CostModel,
    /// Records in the full (modelled) dataset — the paper's 65 M.
    pub dataset_records: f64,
}

impl Context {
    /// Builds the context, generating the sample and running both
    /// calibrations.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        let fleet = match scale {
            Scale::Quick => FleetConfig::small(),
            Scale::Full => FleetConfig::sample_scale(),
        };
        let sample = fleet.generate();
        let universe = fleet.universe();
        let cloud = EnvProfile::cloud_object_store();
        let local = EnvProfile::local_cluster();
        let calib = match scale {
            // Larger than CalibrationConfig::quick(): the repro binary
            // always runs in release, and the cloud profile's 29.5 s
            // ExtraCost needs partitions big enough for the scan signal
            // to rise above timing noise.
            Scale::Quick => CalibrationConfig {
                sizes: vec![1_500, 3_000, 6_000],
                partitions_per_set: 4,
            },
            Scale::Full => CalibrationConfig::paper(),
        };
        let cloud_model = CostModel::calibrate_with(&cloud, &sample, &calib, 0xB107).0;
        let local_model = CostModel::calibrate_with(&local, &sample, &calib, 0xB107).0;
        Self {
            scale,
            sample,
            universe,
            cloud,
            local,
            cloud_model,
            local_model,
            dataset_records: 65e6,
        }
    }

    /// The partitioning-spec grid for this scale: the paper's 25 specs,
    /// or a 6-spec subset for quick runs.
    #[must_use]
    pub fn spec_grid(&self) -> Vec<blot_index::SchemeSpec> {
        use blot_index::SchemeSpec;
        match self.scale {
            Scale::Quick => vec![
                SchemeSpec::new(16, 16),
                SchemeSpec::new(16, 64),
                SchemeSpec::new(64, 32),
                SchemeSpec::new(256, 16),
                SchemeSpec::new(256, 64),
                SchemeSpec::new(1024, 32),
            ],
            Scale::Full => SchemeSpec::paper_grid(),
        }
    }
}
