//! Figure 3: computation time of the exact MIP solution as the input
//! grows.
//!
//! The paper sweeps the workload size (3a) and the candidate-replica
//! count (3b) over synthetic instances and shows the solve time growing
//! steeply, motivating the greedy fallback. Our from-scratch dense
//! simplex + branch & bound is slower than a commercial solver, so the
//! sweep tops out at smaller sizes (documented in EXPERIMENTS.md) —
//! which only sharpens the figure's message.

use blot_core::select::{build_selection_problem, CostMatrix};
use blot_core::units::Bytes;
use blot_mip::MipSolver;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use crate::{Context, Scale};

/// One measured point of the sweep.
#[derive(Debug)]
pub struct Fig3Point {
    /// Number of grouped queries `n`.
    pub queries: usize,
    /// Number of candidate replicas `m`.
    pub replicas: usize,
    /// Wall-clock solve time.
    pub solve_ms: f64,
    /// Branch & bound nodes explored.
    pub nodes: u64,
    /// Whether optimality was proven within the budget.
    pub proven: bool,
}

/// Both sweeps of Figure 3.
#[derive(Debug)]
pub struct Fig3Result {
    /// 3(a): varying workload size at fixed replica counts.
    pub vary_queries: Vec<Fig3Point>,
    /// 3(b): varying candidate count at fixed workload sizes.
    pub vary_replicas: Vec<Fig3Point>,
}

/// Random replica-selection instances shaped like the real ones:
/// per-query costs correlated across replicas (each replica has a
/// quality factor) with heavy noise, random storage sizes, budget at
/// 30 % of total storage.
fn random_instance(n: usize, m: usize, rng: &mut SmallRng) -> (CostMatrix, Bytes) {
    let quality: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..2.0)).collect();
    let costs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..m)
                .map(|j| quality[j] * rng.gen_range(1.0..100.0f64))
                .collect()
        })
        .collect();
    let storage: Vec<Bytes> = (0..m)
        .map(|_| Bytes::new(rng.gen_range(1.0..20.0)))
        .collect();
    let budget = storage.iter().copied().sum::<Bytes>() * 0.3;
    let weights = vec![1.0; n];
    (
        CostMatrix {
            costs,
            weights,
            storage,
        },
        budget,
    )
}

fn measure(n: usize, m: usize, rng: &mut SmallRng) -> Fig3Point {
    let (matrix, budget) = random_instance(n, m, rng);
    // Unseeded solve: this figure measures the raw exact-MIP scaling the
    // paper reports, not the greedy-warm-started production path.
    let problem = build_selection_problem(&matrix, budget);
    let solver = MipSolver {
        max_nodes: 200_000,
        time_limit: Some(Duration::from_secs(120)),
    };
    let started = std::time::Instant::now();
    match solver.solve(&problem) {
        Ok(sol) => Fig3Point {
            queries: n,
            replicas: m,
            solve_ms: started.elapsed().as_secs_f64() * 1e3,
            nodes: sol.stats.nodes_explored,
            proven: sol.proven_optimal,
        },
        // The budget ran out before any incumbent: still a legitimate
        // point of the scaling curve (time = the limit).
        Err(blot_mip::MipError::NodeLimit { explored }) => Fig3Point {
            queries: n,
            replicas: m,
            solve_ms: started.elapsed().as_secs_f64() * 1e3,
            nodes: explored,
            proven: false,
        },
        Err(e) => panic!("random instance must be feasible: {e}"),
    }
}

/// Runs both sweeps.
#[must_use]
pub fn fig3(ctx: &Context) -> Fig3Result {
    let mut rng = SmallRng::seed_from_u64(0xF163);
    let (q_sweep, m_fixed, m_sweep, q_fixed): (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) =
        match ctx.scale {
            Scale::Quick => (vec![4, 8, 16], vec![10, 20], vec![5, 10, 20], vec![4, 8]),
            Scale::Full => (
                vec![8, 16, 32, 64, 128],
                vec![15, 30],
                vec![10, 20, 30, 45, 60],
                vec![4, 8],
            ),
        };
    let mut vary_queries = Vec::new();
    for &m in &m_fixed {
        for &n in &q_sweep {
            vary_queries.push(measure(n, m, &mut rng));
        }
    }
    let mut vary_replicas = Vec::new();
    for &n in &q_fixed {
        for &m in &m_sweep {
            vary_replicas.push(measure(n, m, &mut rng));
        }
    }
    Fig3Result {
        vary_queries,
        vary_replicas,
    }
}

impl Fig3Result {
    /// Renders both sweeps as small tables.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("  (a) solve time vs workload size\n");
        out.push_str("      queries  replicas   solve (ms)      nodes  proven\n");
        for p in &self.vary_queries {
            out.push_str(&format!(
                "      {:>7}  {:>8}  {:>11.1}  {:>9}  {}\n",
                p.queries, p.replicas, p.solve_ms, p.nodes, p.proven
            ));
        }
        out.push_str("  (b) solve time vs candidate replicas\n");
        out.push_str("      queries  replicas   solve (ms)      nodes  proven\n");
        for p in &self.vary_replicas {
            out.push_str(&format!(
                "      {:>7}  {:>8}  {:>11.1}  {:>9}  {}\n",
                p.queries, p.replicas, p.solve_ms, p.nodes, p.proven
            ));
        }
        out
    }

    /// Shape check: solve time grows in both sweep directions (comparing
    /// each series' smallest to largest instance).
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        let grows = |points: &[Fig3Point], key: fn(&Fig3Point) -> usize| {
            // Group by the fixed dimension, check first-vs-last growth.
            let mut ok = true;
            let fixed: Vec<usize> = {
                let mut v: Vec<usize> = points.iter().map(key).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            for f in fixed {
                let series: Vec<&Fig3Point> = points.iter().filter(|p| key(p) == f).collect();
                if series.len() >= 2 {
                    ok &= series.last().unwrap().solve_ms >= series[0].solve_ms * 0.8;
                }
            }
            ok
        };
        grows(&self.vary_queries, |p| p.replicas) && grows(&self.vary_replicas, |p| p.queries)
    }
}
