//! JSON emission for the result files under `results/`.
//!
//! Hand-written [`ToJson`] impls replacing the former serde derives;
//! field names match the previous serde output so existing tooling
//! that reads `results/*.json` keeps working.

use crate::fig5::Fig5Env;
use crate::{
    Fig2Case, Fig2Result, Fig3Point, Fig3Result, Fig4Result, Fig4Row, Fig5Result, Fig6Result,
    Fig6Scale, Table1Result, Table2Result, Table2Row,
};
use blot_core::cost::MeasurePoint;
use blot_json::{Json, ToJson};

impl ToJson for Table1Result {
    fn to_json(&self) -> Json {
        Json::obj([(
            "ratios",
            Json::Arr(
                self.ratios
                    .iter()
                    .map(|(name, ratio)| Json::Arr(vec![name.to_json(), Json::Num(*ratio)]))
                    .collect(),
            ),
        )])
    }
}

impl ToJson for Table2Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", self.scheme.to_json()),
            (
                "inv_scan_rate_ms_per_10k",
                Json::Num(self.inv_scan_rate_ms_per_10k),
            ),
            ("extra_cost_ms", Json::Num(self.extra_cost_ms)),
        ])
    }
}

impl ToJson for Table2Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cloud", self.cloud.to_json()),
            ("local", self.local.to_json()),
        ])
    }
}

impl ToJson for Fig2Case {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", self.scheme.to_json()),
            ("partitions", self.partitions.to_json()),
            ("involved", self.involved.to_json()),
            ("scanned_fraction", Json::Num(self.scanned_fraction)),
            ("est_cost_ms", Json::Num(self.est_cost_ms)),
        ])
    }
}

impl ToJson for Fig2Result {
    fn to_json(&self) -> Json {
        Json::obj([("cases", self.cases.to_json())])
    }
}

impl ToJson for Fig3Point {
    fn to_json(&self) -> Json {
        Json::obj([
            ("queries", self.queries.to_json()),
            ("replicas", self.replicas.to_json()),
            ("solve_ms", Json::Num(self.solve_ms)),
            ("nodes", self.nodes.to_json()),
            ("proven", self.proven.to_json()),
        ])
    }
}

impl ToJson for Fig3Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("vary_queries", self.vary_queries.to_json()),
            ("vary_replicas", self.vary_replicas.to_json()),
        ])
    }
}

impl ToJson for Fig4Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("relative_budget", Json::Num(self.relative_budget)),
            ("single", Json::Num(self.single)),
            ("greedy", Json::Num(self.greedy)),
            ("mip", Json::Num(self.mip)),
            ("mip_proven", self.mip_proven.to_json()),
        ])
    }
}

impl ToJson for Fig4Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ideal", Json::Num(self.ideal)),
            (
                "candidates_after_pruning",
                self.candidates_after_pruning.to_json(),
            ),
            ("rows", self.rows.to_json()),
        ])
    }
}

fn measure_point_json(m: &MeasurePoint) -> Json {
    // `MeasurePoint` lives in blot-core, which stays JSON-agnostic; the
    // orphan rule sends this impl here as a free function.
    Json::obj([
        ("scheme", Json::Str(m.scheme.to_string())),
        ("records", m.records.to_json()),
        ("avg_ms", Json::Num(m.avg_ms)),
    ])
}

impl ToJson for Fig5Env {
    fn to_json(&self) -> Json {
        Json::obj([
            ("env", self.env.to_json()),
            (
                "points",
                Json::Arr(self.points.iter().map(measure_point_json).collect()),
            ),
            (
                "fits",
                Json::Arr(
                    self.fits
                        .iter()
                        .map(|(scheme, slope, intercept)| {
                            Json::Arr(vec![
                                scheme.to_json(),
                                Json::Num(*slope),
                                Json::Num(*intercept),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "r_squared",
                Json::Arr(
                    self.r_squared
                        .iter()
                        .map(|(scheme, r2)| Json::Arr(vec![scheme.to_json(), Json::Num(*r2)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Fig5Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cloud", self.cloud.to_json()),
            ("local", self.local.to_json()),
        ])
    }
}

impl ToJson for Fig6Scale {
    fn to_json(&self) -> Json {
        Json::obj([
            ("gb", Json::Num(self.gb)),
            ("records", Json::Num(self.records)),
            ("single", self.single.to_json()),
            ("greedy", self.greedy.to_json()),
            ("mip", self.mip.to_json()),
            ("ideal", self.ideal.to_json()),
            (
                "ratios",
                Json::Arr(vec![
                    Json::Num(self.ratios.0),
                    Json::Num(self.ratios.1),
                    Json::Num(self.ratios.2),
                ]),
            ),
        ])
    }
}

impl ToJson for Fig6Result {
    fn to_json(&self) -> Json {
        Json::obj([("scales", self.scales.to_json())])
    }
}
