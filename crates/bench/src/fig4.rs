//! Figure 4: overall query cost relative to the ideal case as the
//! storage budget varies.

use blot_codec::EncodingScheme;
use blot_core::prelude::*;
use blot_core::select::{ideal_cost, select_greedy, select_mip, select_single};
use blot_mip::MipSolver;
use std::time::Duration;

use crate::Context;

/// One budget point.
#[derive(Debug)]
pub struct Fig4Row {
    /// Budget relative to the reference (3 copies of the optimal single
    /// replica).
    pub relative_budget: f64,
    /// `Cost(W, ·)` of the best affordable single replica.
    pub single: f64,
    /// Greedy (Algorithm 1).
    pub greedy: f64,
    /// Exact MIP.
    pub mip: f64,
    /// Whether the MIP solve proved optimality within its budget.
    pub mip_proven: bool,
}

/// The full budget sweep.
#[derive(Debug)]
pub struct Fig4Result {
    /// Unconstrained lower bound (every candidate available).
    pub ideal: f64,
    /// Candidate count after dominance pruning (the MIP runs on this).
    pub candidates_after_pruning: usize,
    /// Sweep rows in budget order.
    pub rows: Vec<Fig4Row>,
}

/// Runs the sweep in the cloud environment (the paper's §V-C setting).
///
/// The dataset is modelled at 100× the paper's 3.7 GB sample (the
/// 370 GB point of Figure 6): at sample scale per-partition ExtraTime
/// dominates every layout decision and all strategies collapse onto the
/// ideal — visible in Figure 6(a) — so the budget trade-off the figure
/// is about only exists at production scale.
#[must_use]
pub fn fig4(ctx: &Context) -> Fig4Result {
    let candidates = ReplicaConfig::grid(&ctx.spec_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&ctx.universe);
    let matrix = CostMatrix::estimate_scaled(
        &ctx.cloud_model,
        &workload,
        &candidates,
        &ctx.sample,
        ctx.universe,
        ctx.dataset_records * 100.0,
    );
    // Dominance pruning (§III-C2) before the exact solves.
    let kept = blot_core::select::prune_dominated(&matrix);
    let pruned = CostMatrix {
        costs: matrix
            .costs
            .iter()
            .map(|row| kept.iter().map(|&j| row[j]).collect())
            .collect(),
        weights: matrix.weights.clone(),
        storage: kept.iter().map(|&j| matrix.storage[j]).collect(),
    };

    let reference = 3.0 * matrix.storage[matrix.optimal_single().0];
    let ideal = ideal_cost(&matrix);
    let solver = MipSolver {
        max_nodes: 500_000,
        time_limit: Some(Duration::from_secs(180)),
    };
    let rows = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0]
        .into_iter()
        .map(|rel| {
            let budget = reference * rel;
            let single = select_single(&pruned, budget).workload_cost;
            let greedy = select_greedy(&pruned, budget).workload_cost;
            let mip = select_mip(&pruned, budget, &solver).expect("mip");
            Fig4Row {
                relative_budget: rel,
                single,
                greedy,
                mip: mip.workload_cost,
                mip_proven: mip.proven_optimal,
            }
        })
        .collect();
    Fig4Result {
        ideal,
        candidates_after_pruning: kept.len(),
        rows,
    }
}

impl Fig4Result {
    /// Renders the sweep relative to the ideal cost, like the figure's
    /// y-axis.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  candidates after pruning: {}; ideal cost = {}\n",
            self.candidates_after_pruning,
            crate::fmt_ms(self.ideal)
        ));
        out.push_str("    budget   Single/Ideal   Greedy/Ideal   MIP/Ideal\n");
        for r in &self.rows {
            out.push_str(&format!(
                "    {:>5.2}x {:>13.3} {:>14.3} {:>11.3}\n",
                r.relative_budget,
                r.single / self.ideal,
                r.greedy / self.ideal,
                r.mip / self.ideal
            ));
        }
        out
    }

    /// Shape checks of the paper's Figure 4: MIP stays near ideal at
    /// every budget; greedy's ratio falls below 1.2 once the relative
    /// budget exceeds 1; single never beats greedy or MIP.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        self.rows.iter().all(|r| {
            let mip_ok = r.mip <= r.single + 1e-6 && r.mip <= r.greedy + 1e-6;
            let greedy_ok = r.relative_budget < 1.0 || r.greedy / self.ideal < 1.2;
            let mip_near_ideal = r.relative_budget < 1.0 || r.mip / self.ideal < 1.1;
            mip_ok && greedy_ok && mip_near_ideal
        })
    }
}
