//! Table II: measured `ScanRate` and `ExtraCost` per encoding scheme in
//! both execution environments.

use blot_codec::EncodingScheme;

use crate::Context;

/// One row of Table II.
#[derive(Debug)]
pub struct Table2Row {
    /// Encoding scheme name.
    pub scheme: String,
    /// Fitted `1/ScanRate`, reported as milliseconds per 10⁴ records
    /// (the magnitude the paper's table reads in).
    pub inv_scan_rate_ms_per_10k: f64,
    /// Fitted `ExtraCost` in milliseconds.
    pub extra_cost_ms: f64,
}

/// Table II for both environments.
#[derive(Debug)]
pub struct Table2Result {
    /// Amazon-S3 + EMR style environment.
    pub cloud: Vec<Table2Row>,
    /// Local Hadoop cluster.
    pub local: Vec<Table2Row>,
}

fn rows(model: &blot_core::cost::CostModel) -> Vec<Table2Row> {
    EncodingScheme::all()
        .into_iter()
        .map(|s| {
            let p = model.params(s);
            Table2Row {
                scheme: s.to_string(),
                inv_scan_rate_ms_per_10k: (p.ms_per_record * 1e4).get(),
                extra_cost_ms: p.extra_ms.get(),
            }
        })
        .collect()
}

/// Runs the §V-B measurement procedure in both environments (the
/// context already calibrated the models; this just reads them out).
#[must_use]
pub fn table2(ctx: &Context) -> Table2Result {
    Table2Result {
        cloud: rows(&ctx.cloud_model),
        local: rows(&ctx.local_model),
    }
}

impl Table2Result {
    /// Renders both halves of Table II.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, rows) in [
            ("cloud object store (≈ S3+EMR)", &self.cloud),
            ("local cluster (≈ Hadoop)", &self.local),
        ] {
            out.push_str(&format!("  {name}\n"));
            out.push_str("    scheme       1/ScanRate (ms per 10^4 rec)   ExtraCost (ms)\n");
            for r in rows {
                out.push_str(&format!(
                    "    {:<12} {:>28.2} {:>16.0}\n",
                    r.scheme, r.inv_scan_rate_ms_per_10k, r.extra_cost_ms
                ));
            }
        }
        out
    }

    /// Shape checks: cloud `ExtraCost` ≫ local; local `1/ScanRate` >
    /// cloud per scheme; stronger codecs pay more per record.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        let extra_ok = self
            .cloud
            .iter()
            .zip(&self.local)
            .all(|(c, l)| c.extra_cost_ms > 3.0 * l.extra_cost_ms);
        let rate_ok = self
            .cloud
            .iter()
            .zip(&self.local)
            .all(|(c, l)| l.inv_scan_rate_ms_per_10k > c.inv_scan_rate_ms_per_10k);
        let find = |rows: &[Table2Row], n: &str| {
            rows.iter()
                .find(|r| r.scheme == n)
                .map(|r| r.inv_scan_rate_ms_per_10k)
        };
        let cpu_ok = ["ROW-PLAIN", "ROW-LZMA"]
            .windows(2)
            .all(|w| find(&self.local, w[0]) < find(&self.local, w[1]));
        extra_ok && rate_ok && cpu_ok
    }
}
