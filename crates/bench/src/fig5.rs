//! Figure 5: measured `Cost(q, p)` against partition size, with the
//! fitted straight lines of the cost model.

use blot_core::cost::{CalibrationConfig, CostModel, MeasurePoint};

use crate::{Context, Scale};

/// Measurement points and fitted parameters for one environment.
#[derive(Debug)]
pub struct Fig5Env {
    /// Environment name.
    pub env: String,
    /// Raw measured points (scheme × partition size → average ms).
    pub points: Vec<MeasurePoint>,
    /// Fitted `(scheme, slope ms/record, intercept ms)`.
    pub fits: Vec<(String, f64, f64)>,
    /// Coefficient of determination R² of each scheme's fit.
    pub r_squared: Vec<(String, f64)>,
}

/// Figure 5 for both environments.
#[derive(Debug)]
pub struct Fig5Result {
    /// Sub-figures (a)/(c): the cloud environment.
    pub cloud: Fig5Env,
    /// Sub-figures (b)/(d): the local cluster.
    pub local: Fig5Env,
}

fn measure(ctx: &Context, env: &blot_storage::EnvProfile) -> Fig5Env {
    let calib = match ctx.scale {
        Scale::Quick => CalibrationConfig {
            sizes: vec![1_500, 3_000, 6_000],
            partitions_per_set: 4,
        },
        Scale::Full => CalibrationConfig::paper(),
    };
    let (model, points) = CostModel::calibrate_with(env, &ctx.sample, &calib, 0xF15);
    let mut fits = Vec::new();
    let mut r_squared = Vec::new();
    for scheme in blot_codec::EncodingScheme::all() {
        let p = model.params(scheme);
        fits.push((scheme.to_string(), p.ms_per_record.get(), p.extra_ms.get()));
        // R² of the fit over this scheme's points.
        let pts: Vec<&MeasurePoint> = points.iter().filter(|m| m.scheme == scheme).collect();
        let mean = pts.iter().map(|m| m.avg_ms).sum::<f64>() / pts.len() as f64;
        let ss_tot: f64 = pts.iter().map(|m| (m.avg_ms - mean).powi(2)).sum();
        #[allow(clippy::cast_precision_loss)]
        let ss_res: f64 = pts
            .iter()
            .map(|m| {
                let pred = (p.extra_ms + p.ms_per_record * m.records as f64).get();
                (m.avg_ms - pred).powi(2)
            })
            .sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        r_squared.push((scheme.to_string(), r2));
    }
    Fig5Env {
        env: env.name.to_owned(),
        points,
        fits,
        r_squared,
    }
}

/// Runs the Figure 5 measurement in both environments.
#[must_use]
pub fn fig5(ctx: &Context) -> Fig5Result {
    Fig5Result {
        cloud: measure(ctx, &ctx.cloud),
        local: measure(ctx, &ctx.local),
    }
}

impl Fig5Result {
    /// Renders the measured series and the fits.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for env in [&self.cloud, &self.local] {
            out.push_str(&format!("  environment: {}\n", env.env));
            let mut sizes: Vec<usize> = env.points.iter().map(|p| p.records).collect();
            sizes.sort_unstable();
            sizes.dedup();
            out.push_str(&format!("    {:<12}", "|D(p)| →"));
            for s in &sizes {
                out.push_str(&format!("{s:>12}"));
            }
            out.push('\n');
            for scheme in blot_codec::EncodingScheme::all() {
                out.push_str(&format!("    {:<12}", scheme.to_string()));
                for s in &sizes {
                    let v = env
                        .points
                        .iter()
                        .find(|p| p.scheme == scheme && p.records == *s)
                        .map_or(f64::NAN, |p| p.avg_ms);
                    out.push_str(&format!("{v:>12.0}"));
                }
                let r2 = env
                    .r_squared
                    .iter()
                    .find(|(n, _)| *n == scheme.to_string())
                    .map_or(f64::NAN, |(_, r)| *r);
                out.push_str(&format!("   (fit R² = {r2:.4})\n"));
            }
        }
        out
    }

    /// Shape check: the paper's claim is that Equation 6 fits well,
    /// "especially when the size of partition is relatively large" — we
    /// require R² ≥ 0.9 for every scheme in both environments.
    #[must_use]
    pub fn shape_holds(&self) -> bool {
        [&self.cloud, &self.local]
            .iter()
            .all(|e| e.r_squared.iter().all(|(_, r2)| *r2 >= 0.9))
    }
}
