//! Scanning one storage unit: footer check → read → decompress → filter
//! (§II-D, plus zone-map pruning ahead of the payload fetch).

use std::cell::RefCell;
use std::time::Instant;

use blot_codec::{DecodeScratch, EncodingScheme, ZoneMap, ZONE_MAP_FOOTER_LEN};
use blot_geo::Cuboid;
use blot_model::RecordBatch;
use blot_obs::{names, SpanHandle};

use crate::{Backend, EnvProfile, StorageError, UnitKey};

thread_local! {
    /// Per-scan-thread decode buffers: every unit scanned on this thread
    /// reuses the same allocations.
    static SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
}

/// A request to scan one storage unit against a query range.
#[derive(Debug, Clone, Copy)]
pub struct ScanTask {
    /// Unit to scan.
    pub key: UnitKey,
    /// Scheme the unit was encoded with.
    pub scheme: EncodingScheme,
    /// Query range to filter by; `None` extracts every record (used by
    /// replica repair).
    pub range: Option<Cuboid>,
}

/// Outcome of one scan task.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Unit scanned.
    pub key: UnitKey,
    /// Simulated wall time of the task, **including** the environment's
    /// per-unit extra cost. Pruned units charge only the footer read:
    /// the prune decision happens before a map task would launch, so no
    /// extra cost is paid.
    pub sim_ms: f64,
    /// The extra-cost share of `sim_ms` (task startup + open latency);
    /// 0 for pruned units.
    pub extra_ms: f64,
    /// Bytes transferred from the backend.
    pub bytes: u64,
    /// Records decoded from the unit.
    pub records_scanned: usize,
    /// Records that passed the range filter.
    pub records_matched: usize,
    /// Whether the zone-map footer proved the unit disjoint from the
    /// range, so the payload was never fetched or decoded.
    pub pruned: bool,
    /// Payload bytes the prune avoided transferring (0 when scanned).
    pub bytes_skipped: u64,
    /// Full-extraction scans only: the stored footer disagrees with the
    /// statistics recomputed from the decoded records (or the unit
    /// predates footers). Scrub treats this as damage so repair rewrites
    /// the unit with a fresh footer.
    pub footer_mismatch: bool,
    /// The matching records.
    pub output: RecordBatch,
}

/// Executes a scan task.
///
/// Range scans first fetch only the unit's zone-map footer (a tail-sized
/// ranged read). When the footer proves the unit disjoint from the
/// range, the scan returns empty without ever fetching the payload, and
/// the simulated-time model charges only the footer read — so
/// `ScanRate`/`ExtraTime` accounting stays honest about the work pruning
/// avoids. Surviving units are fetched whole and run through the batched
/// decode-filter with thread-local scratch buffers.
///
/// Full extractions (`range: None`, the scrub/repair path) additionally
/// recompute the zone-map statistics from the decoded records and flag
/// units whose stored footer disagrees (or is missing) via
/// [`ScanReport::footer_mismatch`].
///
/// # Errors
///
/// * [`StorageError::NotFound`] — unit missing;
/// * [`StorageError::Corrupt`] — unit bytes (or its footer) no longer
///   decode.
pub fn run_scan(
    backend: &dyn Backend,
    env: &EnvProfile,
    task: &ScanTask,
) -> Result<ScanReport, StorageError> {
    run_scan_traced(backend, env, task, &SpanHandle::detached())
}

/// [`run_scan`] with an active trace context: the zone-map footer
/// consult and the decode+filter pass each record a child span
/// (`unit.prune`, `unit.decode`) under `trace`, so a query's flight
/// recording attributes per-unit time to its stages. A detached handle
/// (or an `off` build) records nothing and skips span bookkeeping.
///
/// # Errors
///
/// Same as [`run_scan`].
pub fn run_scan_traced(
    backend: &dyn Backend,
    env: &EnvProfile,
    task: &ScanTask,
    trace: &SpanHandle,
) -> Result<ScanReport, StorageError> {
    let traced = trace.context().is_some();
    if let Some(range) = &task.range {
        let mut prune_span = traced.then(|| trace.child(names::UNIT_PRUNE));
        let (tail, total) = backend.get_tail(task.key, ZONE_MAP_FOOTER_LEN)?;
        let started = Instant::now();
        let (_, zone_map) =
            ZoneMap::split_footer(&tail).map_err(|source| StorageError::Corrupt {
                key: task.key,
                source,
            })?;
        // Legacy units (no footer) fall through and scan normally.
        if zone_map.is_some_and(|zm| !zm.overlaps(range)) {
            let cpu_ms = started.elapsed().as_secs_f64() * 1e3;
            let footer_bytes = tail.len() as u64;
            let bytes_skipped = total.saturating_sub(footer_bytes);
            if let Some(span) = prune_span.as_mut() {
                span.note(names::PRUNED, 1);
                span.note(names::BYTES_SKIPPED, bytes_skipped);
            }
            // No ExtraTime: the footer consult is driver-side metadata
            // work — a pruned unit never launches a map task, so the
            // simulated clock charges only the ranged footer read.
            return Ok(ScanReport {
                key: task.key,
                sim_ms: env.scan_ms(footer_bytes, cpu_ms),
                extra_ms: 0.0,
                bytes: footer_bytes,
                records_scanned: 0,
                records_matched: 0,
                pruned: true,
                bytes_skipped,
                footer_mismatch: false,
                output: RecordBatch::new(),
            });
        }
        if let Some(span) = prune_span.as_mut() {
            span.note(names::PRUNED, 0);
        }
    }
    let bytes = backend.get(task.key)?;
    let mut decode_span = traced.then(|| trace.child(names::UNIT_DECODE));
    let started = Instant::now();
    // Fuse decode and filter when a range is given: selective queries
    // never materialise the non-matching records.
    let (output, scanned, footer_mismatch) = match &task.range {
        Some(range) => {
            let filtered = SCRATCH
                .with(|cell| match cell.try_borrow_mut() {
                    Ok(mut scratch) => {
                        task.scheme
                            .decode_filter_batched(&bytes, range, &mut scratch)
                    }
                    // Unreachable in practice (no reentrancy); decode
                    // with fresh buffers rather than panic.
                    Err(_) => {
                        task.scheme
                            .decode_filter_batched(&bytes, range, &mut DecodeScratch::new())
                    }
                })
                .map_err(|source| StorageError::Corrupt {
                    key: task.key,
                    source,
                })?;
            (filtered.matched, filtered.scanned, false)
        }
        None => {
            let stored = ZoneMap::split_footer(bytes.get(1..).unwrap_or_default())
                .map_err(|source| StorageError::Corrupt {
                    key: task.key,
                    source,
                })?
                .1;
            let batch = task
                .scheme
                .decode(&bytes)
                .map_err(|source| StorageError::Corrupt {
                    key: task.key,
                    source,
                })?;
            let mismatch = !stored.is_some_and(|zm| zm.same_bits(&ZoneMap::from_batch(&batch)));
            let n = batch.len();
            (batch, n, mismatch)
        }
    };
    if let Some(span) = decode_span.as_mut() {
        span.note(names::BYTES, bytes.len() as u64);
        span.note(
            names::RECORDS,
            u64::try_from(output.len()).unwrap_or(u64::MAX),
        );
    }
    drop(decode_span);
    let cpu_ms = started.elapsed().as_secs_f64() * 1e3;
    let extra_ms = env.extra_ms();
    let sim_ms = extra_ms + env.scan_ms(bytes.len() as u64, cpu_ms);
    Ok(ScanReport {
        key: task.key,
        sim_ms,
        extra_ms,
        bytes: bytes.len() as u64,
        records_scanned: scanned,
        records_matched: output.len(),
        pruned: false,
        bytes_skipped: 0,
        footer_mismatch,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;
    use blot_codec::{Compression, Layout};
    use blot_geo::Point;
    use blot_model::Record;

    fn setup() -> (MemBackend, EncodingScheme, UnitKey, RecordBatch) {
        let batch: RecordBatch = (0..2000)
            .map(|i| Record::new(i % 5, i64::from(i), 121.0 + f64::from(i) * 1e-4, 31.0))
            .collect();
        let scheme = EncodingScheme::new(Layout::Row, Compression::Lzf);
        let backend = MemBackend::new();
        let key = UnitKey {
            replica: 0,
            partition: 0,
        };
        backend.put(key, scheme.encode(&batch)).unwrap();
        (backend, scheme, key, batch)
    }

    #[test]
    fn scan_filters_records() {
        let (backend, scheme, key, batch) = setup();
        let range = Cuboid::new(
            Point::new(121.0, 30.0, 0.0),
            Point::new(121.05, 32.0, 3000.0),
        );
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: Some(range),
            },
        )
        .unwrap();
        assert_eq!(report.records_scanned, batch.len());
        assert_eq!(report.records_matched, batch.count_in_range(&range));
        assert!(report.records_matched > 0 && report.records_matched < batch.len());
        assert_eq!(report.output.len(), report.records_matched);
        assert!(report.sim_ms >= report.extra_ms);
    }

    #[test]
    fn scan_without_range_extracts_everything() {
        let (backend, scheme, key, batch) = setup();
        let report = run_scan(
            &backend,
            &EnvProfile::cloud_object_store(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert_eq!(report.output.len(), batch.len());
    }

    #[test]
    fn missing_and_corrupt_units_error() {
        let (backend, scheme, key, _) = setup();
        let missing = UnitKey {
            replica: 0,
            partition: 99,
        };
        assert!(matches!(
            run_scan(
                &backend,
                &EnvProfile::local_cluster(),
                &ScanTask {
                    key: missing,
                    scheme,
                    range: None
                }
            ),
            Err(StorageError::NotFound { .. })
        ));
        // Truncate the unit in place: decode must fail as Corrupt.
        let bytes = backend.get(key).unwrap();
        backend.put(key, bytes[..bytes.len() / 2].to_vec()).unwrap();
        assert!(matches!(
            run_scan(
                &backend,
                &EnvProfile::local_cluster(),
                &ScanTask {
                    key,
                    scheme,
                    range: None
                }
            ),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn disjoint_unit_is_pruned_without_touching_the_payload() {
        let (backend, scheme, key, batch) = setup();
        // Data times span 0..2000; query far in the future.
        let range = Cuboid::new(
            Point::new(120.0, 30.0, 10_000.0),
            Point::new(122.0, 32.0, 20_000.0),
        );
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: Some(range),
            },
        )
        .unwrap();
        assert!(report.pruned);
        assert_eq!(report.bytes, ZONE_MAP_FOOTER_LEN as u64);
        // No map task launches for a pruned unit: only the footer read
        // is on the simulated clock.
        assert_eq!(report.extra_ms, 0.0);
        assert!(report.sim_ms < EnvProfile::local_cluster().extra_ms());
        let unit_len = backend.size_of(key).unwrap();
        assert_eq!(report.bytes_skipped, unit_len - ZONE_MAP_FOOTER_LEN as u64);
        assert_eq!(report.records_scanned, 0);
        assert!(report.output.is_empty());
        // The same query against the decoded batch really is empty.
        assert_eq!(batch.count_in_range(&range), 0);
        // An overlapping query is NOT pruned.
        let hit = Cuboid::new(Point::new(120.0, 30.0, 0.0), Point::new(122.0, 32.0, 50.0));
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: Some(hit),
            },
        )
        .unwrap();
        assert!(!report.pruned);
        assert_eq!(report.bytes_skipped, 0);
        assert_eq!(report.records_scanned, batch.len());
    }

    #[test]
    fn legacy_unit_without_footer_scans_and_flags_mismatch() {
        let (backend, scheme, key, batch) = setup();
        // Strip the footer, emulating a unit written before zone maps.
        let bytes = backend.get(key).unwrap();
        backend
            .put(key, bytes[..bytes.len() - ZONE_MAP_FOOTER_LEN].to_vec())
            .unwrap();
        // Disjoint range: legacy units cannot be pruned, only scanned.
        let range = Cuboid::new(
            Point::new(120.0, 30.0, 10_000.0),
            Point::new(122.0, 32.0, 20_000.0),
        );
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: Some(range),
            },
        )
        .unwrap();
        assert!(!report.pruned);
        assert_eq!(report.records_scanned, batch.len());
        assert_eq!(report.records_matched, 0);
        // Full extraction reports the missing footer so scrub/repair can
        // upgrade the unit.
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert!(report.footer_mismatch);
    }

    #[test]
    fn corrupt_footer_is_an_error_never_a_prune() {
        let (backend, scheme, key, _) = setup();
        let mut bytes = backend.get(key).unwrap();
        // Flip a stats byte inside the footer: checksum must catch it.
        let at = bytes.len() - ZONE_MAP_FOOTER_LEN + 3;
        bytes[at] ^= 0xFF;
        backend.put(key, bytes).unwrap();
        let range = Cuboid::new(
            Point::new(120.0, 30.0, 10_000.0),
            Point::new(122.0, 32.0, 20_000.0),
        );
        assert!(matches!(
            run_scan(
                &backend,
                &EnvProfile::local_cluster(),
                &ScanTask {
                    key,
                    scheme,
                    range: Some(range),
                },
            ),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn forged_footer_bounds_are_reported_as_mismatch() {
        let (backend, scheme, key, _) = setup();
        let bytes = backend.get(key).unwrap();
        // Replace the footer with a validly-checksummed footer for a
        // different batch: only the recompute-and-compare pass can tell.
        let mut forged = bytes[..bytes.len() - ZONE_MAP_FOOTER_LEN].to_vec();
        let other: RecordBatch = (0..3)
            .map(|i| Record::new(i, 999_999, 100.0, 10.0))
            .collect();
        blot_codec::ZoneMap::from_batch(&other).append_to(&mut forged);
        backend.put(key, forged).unwrap();
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert!(report.footer_mismatch);
    }

    #[test]
    fn extra_cost_dominates_tiny_scans_in_the_cloud() {
        let (backend, scheme, key, _) = setup();
        let report = run_scan(
            &backend,
            &EnvProfile::cloud_object_store(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert!(report.extra_ms / report.sim_ms > 0.9);
    }
}
