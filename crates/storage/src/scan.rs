//! Scanning one storage unit: read → decompress → filter (§II-D).

use std::time::Instant;

use blot_codec::EncodingScheme;
use blot_geo::Cuboid;
use blot_model::RecordBatch;

use crate::{Backend, EnvProfile, StorageError, UnitKey};

/// A request to scan one storage unit against a query range.
#[derive(Debug, Clone, Copy)]
pub struct ScanTask {
    /// Unit to scan.
    pub key: UnitKey,
    /// Scheme the unit was encoded with.
    pub scheme: EncodingScheme,
    /// Query range to filter by; `None` extracts every record (used by
    /// replica repair).
    pub range: Option<Cuboid>,
}

/// Outcome of one scan task.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Unit scanned.
    pub key: UnitKey,
    /// Simulated wall time of the task, **including** the environment's
    /// per-unit extra cost.
    pub sim_ms: f64,
    /// The extra-cost share of `sim_ms` (task startup + open latency).
    pub extra_ms: f64,
    /// Bytes transferred from the backend.
    pub bytes: u64,
    /// Records decoded from the unit.
    pub records_scanned: usize,
    /// Records that passed the range filter.
    pub records_matched: usize,
    /// The matching records.
    pub output: RecordBatch,
}

/// Executes a scan task: fetches the unit from `backend`, decodes it with
/// the task's scheme, filters by the range, and charges simulated time
/// according to `env`.
///
/// # Errors
///
/// * [`StorageError::NotFound`] — unit missing;
/// * [`StorageError::Corrupt`] — unit bytes no longer decode.
pub fn run_scan(
    backend: &dyn Backend,
    env: &EnvProfile,
    task: &ScanTask,
) -> Result<ScanReport, StorageError> {
    let bytes = backend.get(task.key)?;
    let started = Instant::now();
    // Fuse decode and filter when a range is given: selective queries
    // never materialise the non-matching records.
    let (output, scanned) = match &task.range {
        Some(range) => {
            let filtered = task.scheme.decode_filter(&bytes, range).map_err(|source| {
                StorageError::Corrupt {
                    key: task.key,
                    source,
                }
            })?;
            (filtered.matched, filtered.scanned)
        }
        None => {
            let batch = task
                .scheme
                .decode(&bytes)
                .map_err(|source| StorageError::Corrupt {
                    key: task.key,
                    source,
                })?;
            let n = batch.len();
            (batch, n)
        }
    };
    let cpu_ms = started.elapsed().as_secs_f64() * 1e3;
    let extra_ms = env.extra_ms();
    let sim_ms = extra_ms + env.scan_ms(bytes.len() as u64, cpu_ms);
    Ok(ScanReport {
        key: task.key,
        sim_ms,
        extra_ms,
        bytes: bytes.len() as u64,
        records_scanned: scanned,
        records_matched: output.len(),
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;
    use blot_codec::{Compression, Layout};
    use blot_geo::Point;
    use blot_model::Record;

    fn setup() -> (MemBackend, EncodingScheme, UnitKey, RecordBatch) {
        let batch: RecordBatch = (0..2000)
            .map(|i| Record::new(i % 5, i64::from(i), 121.0 + f64::from(i) * 1e-4, 31.0))
            .collect();
        let scheme = EncodingScheme::new(Layout::Row, Compression::Lzf);
        let backend = MemBackend::new();
        let key = UnitKey {
            replica: 0,
            partition: 0,
        };
        backend.put(key, scheme.encode(&batch)).unwrap();
        (backend, scheme, key, batch)
    }

    #[test]
    fn scan_filters_records() {
        let (backend, scheme, key, batch) = setup();
        let range = Cuboid::new(
            Point::new(121.0, 30.0, 0.0),
            Point::new(121.05, 32.0, 3000.0),
        );
        let report = run_scan(
            &backend,
            &EnvProfile::local_cluster(),
            &ScanTask {
                key,
                scheme,
                range: Some(range),
            },
        )
        .unwrap();
        assert_eq!(report.records_scanned, batch.len());
        assert_eq!(report.records_matched, batch.count_in_range(&range));
        assert!(report.records_matched > 0 && report.records_matched < batch.len());
        assert_eq!(report.output.len(), report.records_matched);
        assert!(report.sim_ms >= report.extra_ms);
    }

    #[test]
    fn scan_without_range_extracts_everything() {
        let (backend, scheme, key, batch) = setup();
        let report = run_scan(
            &backend,
            &EnvProfile::cloud_object_store(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert_eq!(report.output.len(), batch.len());
    }

    #[test]
    fn missing_and_corrupt_units_error() {
        let (backend, scheme, key, _) = setup();
        let missing = UnitKey {
            replica: 0,
            partition: 99,
        };
        assert!(matches!(
            run_scan(
                &backend,
                &EnvProfile::local_cluster(),
                &ScanTask {
                    key: missing,
                    scheme,
                    range: None
                }
            ),
            Err(StorageError::NotFound { .. })
        ));
        // Truncate the unit in place: decode must fail as Corrupt.
        let bytes = backend.get(key).unwrap();
        backend.put(key, bytes[..bytes.len() / 2].to_vec()).unwrap();
        assert!(matches!(
            run_scan(
                &backend,
                &EnvProfile::local_cluster(),
                &ScanTask {
                    key,
                    scheme,
                    range: None
                }
            ),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn extra_cost_dominates_tiny_scans_in_the_cloud() {
        let (backend, scheme, key, _) = setup();
        let report = run_scan(
            &backend,
            &EnvProfile::cloud_object_store(),
            &ScanTask {
                key,
                scheme,
                range: None,
            },
        )
        .unwrap();
        assert!(report.extra_ms / report.sim_ms > 0.9);
    }
}
