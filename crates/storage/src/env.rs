//! Execution-environment profiles.
//!
//! §IV-A of the paper: the cost of scanning a partition is
//! `|D(p)| / ScanRate + ExtraTime`, where both parameters depend on the
//! environment — "if each partition is stored continuously as a regular
//! file on a local disk, then ExtraTime is the seek time … if each
//! partition is stored as an object on Amazon S3 and queries are
//! processed on Amazon EMR, then ExtraTime is the time initializing the
//! map task plus the time locating the S3 object".
//!
//! A profile decomposes those into primitive latencies; the measured
//! `ScanRate`/`ExtraTime` of Table II are then *fitted back* from
//! simulated scans by the calibration harness (§V-B), never read from
//! these constants directly.

/// Latency structure of one execution environment.
///
/// Simulated time for scanning a unit of `b` bytes whose decode+filter
/// took `cpu` host milliseconds:
///
/// ```text
/// extra = task_startup_ms + open_latency_ms
/// scan  = b / bandwidth_bytes_per_ms + cpu × cpu_factor
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvProfile {
    /// Human-readable environment name.
    pub name: &'static str,
    /// Cost of spinning up the processing task (mapper init, JVM start).
    pub task_startup_ms: f64,
    /// Cost of locating/opening the storage unit (disk seek + namenode
    /// lookup, or S3 GET first-byte latency).
    pub open_latency_ms: f64,
    /// Sequential transfer rate of the storage medium.
    pub bandwidth_bytes_per_ms: f64,
    /// Ratio of the simulated node's per-record CPU time to the host's
    /// (bigger = slower nodes).
    pub cpu_factor: f64,
}

impl EnvProfile {
    /// A local Hadoop-style cluster: cheap task startup and seeks, but
    /// commodity nodes with modest disks — low `ExtraTime`, low
    /// `ScanRate` (Table II bottom half).
    ///
    /// The CPU factor is large because it bridges a tight release-mode
    /// Rust decode loop on a modern host to a 2014-era JVM mapper
    /// parsing records off HDFS — the paper's measured `1/ScanRate`
    /// (Table II) is ~0.06 ms/record for uncompressed rows, roughly
    /// three orders of magnitude above a native decode. Getting this
    /// balance right matters: it decides where the partition-granularity
    /// trade-off of Figure 2 crosses over.
    #[must_use]
    pub fn local_cluster() -> Self {
        Self {
            name: "local-cluster",
            task_startup_ms: 4_800.0,
            open_latency_ms: 400.0,
            bandwidth_bytes_per_ms: 60_000.0, // 60 MB/s spinning disks
            cpu_factor: 900.0,
        }
    }

    /// Amazon-S3-plus-EMR-style cloud: very expensive per-partition
    /// setup (job scheduling + S3 object locate ≈ 30 s) but scans
    /// several times faster than the local cluster once streaming —
    /// high `ExtraTime`, high `ScanRate` (Table II top half, where
    /// `1/ScanRate` is ≈ 7× smaller than the local cluster's).
    #[must_use]
    pub fn cloud_object_store() -> Self {
        Self {
            name: "cloud-object-store",
            task_startup_ms: 24_000.0,
            open_latency_ms: 5_500.0,
            bandwidth_bytes_per_ms: 250_000.0, // 250 MB/s S3 streaming
            cpu_factor: 125.0,
        }
    }

    /// Per-unit fixed cost (the paper's `ExtraTime` ground truth).
    #[must_use]
    pub fn extra_ms(&self) -> f64 {
        self.task_startup_ms + self.open_latency_ms
    }

    /// Simulated milliseconds for a scan that transferred `bytes` and
    /// spent `cpu_ms` of host CPU decoding and filtering.
    #[must_use]
    pub fn scan_ms(&self, bytes: u64, cpu_ms: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let transfer = bytes as f64 / self.bandwidth_bytes_per_ms;
        transfer + cpu_ms * self.cpu_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_has_much_larger_extra_cost() {
        let local = EnvProfile::local_cluster();
        let cloud = EnvProfile::cloud_object_store();
        assert!(cloud.extra_ms() > 4.0 * local.extra_ms());
    }

    #[test]
    fn local_is_slower_per_cpu_unit() {
        let local = EnvProfile::local_cluster();
        let cloud = EnvProfile::cloud_object_store();
        // Same work: local nodes take several times longer (Table II's
        // 1/ScanRate ratio is ≈ 7× for ROW-PLAIN).
        assert!(local.scan_ms(1 << 20, 10.0) > 3.0 * cloud.scan_ms(1 << 20, 10.0));
    }

    #[test]
    fn scan_time_is_monotone_in_bytes_and_cpu() {
        let env = EnvProfile::local_cluster();
        assert!(env.scan_ms(2000, 1.0) > env.scan_ms(1000, 1.0));
        assert!(env.scan_ms(1000, 2.0) > env.scan_ms(1000, 1.0));
    }
}
