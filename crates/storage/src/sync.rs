//! Poison-recovering wrappers over [`std::sync`] locks.
//!
//! A poisoned lock only means some thread panicked while holding it.
//! Every structure guarded here (unit maps, failure tables, query logs)
//! is valid after any prefix of its mutations, so recovering the guard
//! is always sound — and it keeps panic paths out of library code,
//! which the workspace audit (`cargo xtask lint`) forbids.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// An [`std::sync::RwLock`] whose accessors recover from poisoning
/// instead of panicking.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An [`std::sync::Mutex`] whose accessor recovers from poisoning
/// instead of panicking.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_locks_recover() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let r = std::sync::Arc::new(RwLock::new(2u32));
        let (mc, rc) = (m.clone(), r.clone());
        let _ = std::thread::spawn(move || {
            let _g1 = mc.lock();
            let _g2 = rc.write();
            panic!("poison both");
        })
        .join();
        assert_eq!(*m.lock(), 1);
        assert_eq!(*r.read(), 2);
        *r.write() = 3;
        assert_eq!(*r.read(), 3);
    }

    /// A panic after a partial mutation must leave that prefix visible:
    /// the wrappers promise prefix-validity, not rollback.
    #[test]
    fn partial_mutation_before_poison_is_preserved() {
        let m = std::sync::Arc::new(Mutex::new(Vec::<u32>::new()));
        let mc = m.clone();
        let _ = std::thread::spawn(move || {
            let mut g = mc.lock();
            g.push(1);
            g.push(2);
            panic!("poison mid-update");
        })
        .join();
        assert_eq!(*m.lock(), vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    /// After recovery the lock must still coordinate normally across
    /// threads — poisoning is a one-time event, not a sticky failure.
    #[test]
    fn recovered_locks_remain_usable_across_threads() {
        let r = std::sync::Arc::new(RwLock::new(0u32));
        let rc = r.clone();
        let _ = std::thread::spawn(move || {
            let _g = rc.write();
            panic!("poison");
        })
        .join();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rc = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *rc.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().is_ok());
        }
        assert_eq!(*r.read(), 400);
    }

    /// Readers recover too, and a poisoned `RwLock` still admits
    /// concurrent shared readers afterwards.
    #[test]
    fn poisoned_rwlock_still_allows_concurrent_readers() {
        let r = std::sync::Arc::new(RwLock::new(7u32));
        let rc = r.clone();
        let _ = std::thread::spawn(move || {
            let _g = rc.write();
            panic!("poison");
        })
        .join();
        let g1 = r.read();
        let g2 = r.read();
        assert_eq!(*g1 + *g2, 14);
    }

    #[test]
    fn default_constructs_empty_values() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        let r: RwLock<u32> = RwLock::default();
        assert!(m.lock().is_empty());
        assert_eq!(*r.read(), 0);
    }
}
