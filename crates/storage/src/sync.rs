//! Poison-recovering wrappers over [`std::sync`] locks.
//!
//! A poisoned lock only means some thread panicked while holding it.
//! Every structure guarded here (unit maps, failure tables, query logs)
//! is valid after any prefix of its mutations, so recovering the guard
//! is always sound — and it keeps panic paths out of library code,
//! which the workspace audit (`cargo xtask lint`) forbids.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// An [`std::sync::RwLock`] whose accessors recover from poisoning
/// instead of panicking.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An [`std::sync::Mutex`] whose accessor recovers from poisoning
/// instead of panicking.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_locks_recover() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let r = std::sync::Arc::new(RwLock::new(2u32));
        let (mc, rc) = (m.clone(), r.clone());
        let _ = std::thread::spawn(move || {
            let _g1 = mc.lock();
            let _g2 = rc.write();
            panic!("poison both");
        })
        .join();
        assert_eq!(*m.lock(), 1);
        assert_eq!(*r.read(), 2);
        *r.write() = 3;
        assert_eq!(*r.read(), 3);
    }
}
