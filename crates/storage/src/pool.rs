//! The shared scan-executor pool: persistent worker threads for all
//! unit-granular work.
//!
//! §II-D of the paper makes the BLOT execution model explicitly
//! parallel ("it is straightforward to conduct parallel query
//! processing by scanning multiple partitions simultaneously"), and a
//! production store serves *many* queries at once. Spawning a fresh set
//! of OS threads per query — what [`crate::job::MapOnlyJob`] did before
//! this module existed — pays thread-creation latency on every call and
//! oversubscribes the host as soon as queries overlap. A
//! [`ScanExecutor`] is instead created once (per [`BlotStore`-like
//! owner]) and shared by every scan, encode, decode and verify task the
//! store issues.
//!
//! Design:
//!
//! * **Fixed-size pool** — sized from
//!   [`std::thread::available_parallelism`] by default; workers park on
//!   a condition variable when idle, so an idle pool costs nothing.
//! * **Ordered batches** — [`ScanExecutor::execute_all`] takes a vector
//!   of closures and returns their results *in task order*, whatever
//!   order they finished in.
//! * **Fail-fast** — the first task that returns a [`StorageError`]
//!   aborts the batch: tasks that have not started yet are skipped
//!   (their slots are abandoned) and the triggering error is returned,
//!   matching the failed-MapReduce-job semantics of the paper's
//!   evaluation setup.
//! * **Panic containment** — a panicking task is caught with
//!   [`std::panic::catch_unwind`] and surfaces as
//!   [`StorageError::WorkerPanicked`]; the worker thread itself
//!   survives and keeps serving later batches.
//! * **Caller participation** — the submitting thread does not just
//!   block: while its batch is unfinished it pops queued tasks (its own
//!   or another batch's) and runs them. This guarantees progress even
//!   when every worker is busy — including re-entrant
//!   [`execute_all`](ScanExecutor::execute_all) calls issued from
//!   inside a task — so the pool cannot deadlock on nesting.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blot_obs::{names, Counter, Gauge, Histogram, MetricsRegistry, Span, SpanHandle};

use crate::sync::Mutex;
use crate::StorageError;

/// A queued unit of work, type-erased.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the executor handle and its workers.
struct Shared {
    /// FIFO of queued jobs.
    jobs: Mutex<VecDeque<Job>>,
    /// Signalled when a job is queued (or shutdown begins).
    available: Condvar,
    /// Set once, on drop: workers exit instead of waiting.
    shutdown: AtomicBool,
}

/// Per-batch state shared between `execute_all` and its queued tasks.
struct Batch<T> {
    /// One slot per task, filled in task order.
    slots: Mutex<BatchSlots<T>>,
    /// Signalled when the last task of the batch finishes.
    done: Condvar,
    /// Set when a task errored or panicked: unstarted tasks are skipped.
    aborted: AtomicBool,
}

struct BatchSlots<T> {
    results: Vec<Option<T>>,
    /// Tasks not yet finished (or skipped).
    remaining: usize,
    /// The error that triggered the abort, if any.
    first_error: Option<StorageError>,
}

/// Instrument handles for one pool, fetched once from a
/// [`MetricsRegistry`] and cloned into queued jobs.
#[derive(Debug)]
struct PoolMetrics {
    /// Jobs currently sitting in the queue (decremented when a job is
    /// popped and run, whether or not its batch was already aborted).
    queue_depth: Gauge,
    /// Tasks executed on the inline fast path (≤ 1 worker or 1 task).
    inline_tasks: Counter,
    /// Tasks that went through the job queue.
    pooled_tasks: Counter,
    /// Tasks whose closure panicked (inline or pooled); each also
    /// surfaces as [`StorageError::WorkerPanicked`] to its batch.
    worker_panics: Counter,
    /// Wall-clock milliseconds per `execute_all` batch (the batch's
    /// real makespan, caller participation included).
    batch_ms: Histogram,
}

/// A persistent, fixed-size worker pool executing ordered, fail-fast
/// batches of fallible tasks.
///
/// See the [module docs](self) for the execution model. Cloning is not
/// supported directly — share one executor with [`Arc`].
pub struct ScanExecutor {
    shared: Arc<Shared>,
    /// Join handles, drained by [`shutdown`](Self::shutdown) (which
    /// takes `&self` — hence the mutex) or by `Drop`.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Live worker count: `workers.len()` until shutdown, then 0. Kept
    /// separately so the `execute_all` fast-path check stays lock-free.
    threads: AtomicUsize,
    /// Set once by [`attach_metrics`](Self::attach_metrics); `None`
    /// until an owner registers the pool, so an unowned pool records
    /// nothing.
    metrics: OnceLock<PoolMetrics>,
}

impl std::fmt::Debug for ScanExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanExecutor")
            .field("threads", &self.threads())
            .finish_non_exhaustive()
    }
}

impl Default for ScanExecutor {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl ScanExecutor {
    /// Creates a pool with `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                // A failed spawn only shrinks the pool: the submitting
                // thread participates in every batch, so even a pool
                // with zero workers makes progress.
                std::thread::Builder::new()
                    .name(format!("blot-scan-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        let count = workers.len();
        Self {
            shared,
            workers: Mutex::new(workers),
            threads: AtomicUsize::new(count),
            metrics: OnceLock::new(),
        }
    }

    /// Registers this pool's instruments (queue depth, inline vs pooled
    /// task counts, worker panics, per-batch makespan) in `registry`
    /// under the `pool.*` names. The first call wins: a pool shared
    /// across stores reports into the registry of the store that
    /// attached first, and later calls are no-ops.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.metrics.set(PoolMetrics {
            queue_depth: registry.gauge("pool.queue_depth"),
            inline_tasks: registry.counter("pool.tasks_inline"),
            pooled_tasks: registry.counter("pool.tasks_pooled"),
            worker_panics: registry.counter("pool.worker_panics"),
            batch_ms: registry.histogram("pool.batch_ms"),
        });
    }

    /// Creates a pool sized from [`std::thread::available_parallelism`]
    /// (falling back to 4 workers when the host will not say).
    #[must_use]
    pub fn with_default_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get))
    }

    /// Number of worker threads actually running (0 after
    /// [`shutdown`](Self::shutdown); batches then run inline on the
    /// submitting thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Acquire)
    }

    /// Gracefully stops the pool: waits (up to `timeout`) for the job
    /// queue to drain, then signals the workers to exit and joins them
    /// with whatever budget remains. Returns `true` when the queue
    /// drained and every worker was joined inside the deadline; `false`
    /// leaves stragglers detached (they still exit once their current
    /// job finishes).
    ///
    /// The pool stays usable afterwards in a degraded mode: with zero
    /// workers every later `execute_all` runs inline on the submitting
    /// thread, so nothing that still holds the pool breaks. Calling
    /// `shutdown` twice is a cheap no-op the second time.
    pub fn shutdown(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let poll = Duration::from_millis(2);
        // Drain first: queued jobs belong to in-flight `execute_all`
        // batches whose callers are participating right now. Workers
        // check the shutdown flag *before* popping, so flipping the
        // flag early would abandon queued jobs to their (single)
        // submitting thread and serialize the tail of every batch.
        let mut drained = false;
        loop {
            if self.shared.jobs.lock().is_empty() {
                drained = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(poll);
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        self.threads.store(0, Ordering::Release);
        let mut joined_all = true;
        for handle in handles {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(poll);
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                // Deadline blown: detach. The worker exits on its own
                // as soon as its current job returns.
                joined_all = false;
            }
        }
        drained && joined_all
    }

    /// Runs every task of the batch on the pool (the calling thread
    /// participates) and returns their results in task order.
    ///
    /// # Errors
    ///
    /// Fails fast: the first task to return a [`StorageError`] aborts
    /// the batch — tasks that have not started are skipped — and that
    /// error is returned. A panicking task aborts the batch the same
    /// way with [`StorageError::WorkerPanicked`].
    pub fn execute_all<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, StorageError>
    where
        F: FnOnce() -> Result<T, StorageError> + Send + 'static,
        T: Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let metrics = self.metrics.get();
        let _batch_span = metrics.map(|m| Span::start(&m.batch_ms));
        // Inline fast path: with at most one worker (or one task) there
        // is no parallelism to win, so the job queue's lock/wakeup
        // traffic and the caller↔worker context switches are pure
        // overhead — measurably so on single-core hosts. Semantics are
        // identical: task order, fail-fast, panics surface as
        // `WorkerPanicked`.
        if self.threads() <= 1 || n == 1 {
            if let Some(m) = metrics {
                m.inline_tasks.add(n as u64);
            }
            let mut out = Vec::with_capacity(n);
            for task in tasks {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(Ok(value)) => out.push(value),
                    Ok(Err(e)) => return Err(e),
                    Err(_panic) => {
                        if let Some(m) = metrics {
                            m.worker_panics.inc();
                        }
                        return Err(StorageError::WorkerPanicked);
                    }
                }
            }
            return Ok(out);
        }
        let batch: Arc<Batch<T>> = Arc::new(Batch {
            slots: Mutex::new(BatchSlots {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                first_error: None,
            }),
            done: Condvar::new(),
            aborted: AtomicBool::new(false),
        });

        // Queue every task, then wake the workers once. Metric handles
        // are cloned into each job so recording stays lock-free on the
        // worker side.
        let depth = metrics.map(|m| m.queue_depth.clone());
        let panics = metrics.map(|m| m.worker_panics.clone());
        if let Some(m) = metrics {
            m.pooled_tasks.add(n as u64);
            m.queue_depth.add(i64::try_from(n).unwrap_or(i64::MAX));
        }
        {
            let mut jobs = self.shared.jobs.lock();
            for (i, task) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let depth = depth.clone();
                let panics = panics.clone();
                jobs.push_back(Box::new(move || {
                    if let Some(d) = &depth {
                        d.add(-1);
                    }
                    let panicked = run_task(&batch, i, task);
                    if panicked {
                        if let Some(p) = &panics {
                            p.inc();
                        }
                    }
                }));
            }
        }
        self.shared.available.notify_all();

        // Participate until this batch is finished: run queued jobs
        // (any batch's), and only park when the queue is empty.
        loop {
            if batch.slots.lock().remaining == 0 {
                break;
            }
            let job = self.shared.jobs.lock().pop_front();
            match job {
                Some(job) => job(),
                None => {
                    let mut slots = batch.slots.lock();
                    while slots.remaining > 0 {
                        slots = batch
                            .done
                            .wait(slots)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    break;
                }
            }
        }

        let mut slots = batch.slots.lock();
        if let Some(e) = slots.first_error.take() {
            return Err(e);
        }
        // No error and no abort ⇒ every slot was filled; a hole can
        // only mean the batch bookkeeping itself was unwound.
        let mut out = Vec::with_capacity(n);
        for slot in &mut slots.results {
            match slot.take() {
                Some(v) => out.push(v),
                None => return Err(StorageError::WorkerPanicked),
            }
        }
        Ok(out)
    }
}

impl ScanExecutor {
    /// [`execute_all`](Self::execute_all) with an active trace context:
    /// every task is wrapped in a `pool.task` span parented under
    /// `trace`, so per-unit spans nest correctly even when the closure
    /// runs on a pool worker thread. Each span notes how long the task
    /// waited in the queue (`queue_us`). A detached handle (or an `off`
    /// build) falls straight through to the untraced path, so untraced
    /// batches pay nothing.
    ///
    /// # Errors
    ///
    /// Identical to [`execute_all`](Self::execute_all): fail-fast on the
    /// first [`StorageError`], panics surface as
    /// [`StorageError::WorkerPanicked`].
    pub fn execute_all_traced<T, F>(
        &self,
        tasks: Vec<F>,
        trace: &SpanHandle,
    ) -> Result<Vec<T>, StorageError>
    where
        F: FnOnce() -> Result<T, StorageError> + Send + 'static,
        T: Send + 'static,
    {
        if trace.context().is_none() {
            return self.execute_all(tasks);
        }
        let queued = Instant::now();
        let wrapped: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let trace = trace.clone();
                move || {
                    let mut span = trace.child(names::POOL_TASK);
                    span.note(
                        names::QUEUE_US,
                        u64::try_from(queued.elapsed().as_micros()).unwrap_or(u64::MAX),
                    );
                    let out = task();
                    span.finish();
                    out
                }
            })
            .collect();
        self.execute_all(wrapped)
    }
}

/// Runs one queued task and records its outcome in the batch. Returns
/// true when the task panicked (for the caller's panic counter).
fn run_task<T, F>(batch: &Batch<T>, i: usize, task: F) -> bool
where
    F: FnOnce() -> Result<T, StorageError>,
{
    let outcome = if batch.aborted.load(Ordering::Acquire) {
        None // batch already failed: skip the work, release the slot
    } else {
        Some(catch_unwind(AssertUnwindSafe(task)))
    };
    let mut panicked = false;
    let mut slots = batch.slots.lock();
    match outcome {
        Some(Ok(Ok(value))) => {
            if let Some(slot) = slots.results.get_mut(i) {
                *slot = Some(value);
            }
        }
        Some(Ok(Err(e))) => {
            if slots.first_error.is_none() {
                slots.first_error = Some(e);
            }
            batch.aborted.store(true, Ordering::Release);
        }
        Some(Err(_panic)) => {
            panicked = true;
            if slots.first_error.is_none() {
                slots.first_error = Some(StorageError::WorkerPanicked);
            }
            batch.aborted.store(true, Ordering::Release);
        }
        None => {}
    }
    slots.remaining -= 1;
    if slots.remaining == 0 {
        batch.done.notify_all();
    }
    panicked
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = shared
                    .available
                    .wait(jobs)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

impl Drop for ScanExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        self.threads.store(0, Ordering::Release);
        for worker in self.workers.lock().drain(..) {
            // A worker that panicked outside `catch_unwind` (impossible
            // for queued jobs, which are wrapped) is already gone;
            // nothing to clean up.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitKey;
    use std::sync::atomic::AtomicUsize;

    fn pool() -> ScanExecutor {
        ScanExecutor::new(4)
    }

    #[test]
    fn results_preserve_task_order() {
        let p = pool();
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from task order.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Ok(i * 3)
                }
            })
            .collect();
        let out = p.execute_all(tasks).unwrap();
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let p = pool();
        let out: Vec<u8> = p
            .execute_all(Vec::<fn() -> Result<u8, StorageError>>::new())
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_aborts_the_batch() {
        let p = pool();
        let started = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let started = Arc::clone(&started);
                move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        Err(StorageError::NotFound {
                            key: UnitKey {
                                replica: 0,
                                partition: 3,
                            },
                        })
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        Ok(i)
                    }
                }
            })
            .collect();
        let err = p.execute_all(tasks).unwrap_err();
        assert!(matches!(err, StorageError::NotFound { key } if key.partition == 3));
        // Fail-fast: a prefix of the batch ran, the tail was skipped.
        assert!(started.load(Ordering::SeqCst) < 200);
    }

    #[test]
    fn panicking_task_becomes_worker_panicked_and_pool_survives() {
        let p = pool();
        let tasks: Vec<Box<dyn FnOnce() -> Result<u32, StorageError> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| panic!("boom")),
            Box::new(|| Ok(3)),
        ];
        let err = p.execute_all(tasks).unwrap_err();
        assert!(matches!(err, StorageError::WorkerPanicked));
        // The pool still works afterwards.
        let ok = p.execute_all(vec![|| Ok(42u32)]).unwrap();
        assert_eq!(ok, vec![42]);
    }

    #[test]
    fn concurrent_batches_from_many_threads() {
        let p = Arc::new(ScanExecutor::new(3));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for round in 0..10 {
                        let tasks: Vec<_> = (0..16)
                            .map(|i| move || Ok(t * 1000 + round * 100 + i))
                            .collect();
                        let out = p.execute_all(tasks).unwrap();
                        let want: Vec<usize> =
                            (0..16).map(|i| t * 1000 + round * 100 + i).collect();
                        assert_eq!(out, want);
                    }
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().is_ok());
        }
    }

    #[test]
    fn nested_execute_all_makes_progress() {
        // Tasks that themselves run batches on the same pool: the
        // caller-participation loop keeps this from deadlocking even
        // when every worker is tied up in an outer task. Two workers
        // and two outer tasks (each fanning out eight inner tasks)
        // force the queued path on both levels.
        let p = Arc::new(ScanExecutor::new(2));
        let outer: Vec<_> = (0..2)
            .map(|t| {
                let inner_pool = Arc::clone(&p);
                move || {
                    let inner: Vec<_> = (0..8).map(move |i| move || Ok(t * 100 + i * i)).collect();
                    let squares = inner_pool.execute_all(inner)?;
                    Ok(squares.into_iter().sum::<usize>())
                }
            })
            .collect();
        let out = p.execute_all(outer).unwrap();
        let want: Vec<usize> = (0..2)
            .map(|t| (0..8).map(|i| t * 100 + i * i).sum())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn single_worker_pool_runs_inline_with_same_semantics() {
        // The inline fast path must preserve ordering, fail-fast and
        // panic containment.
        let p = ScanExecutor::new(1);
        let out = p
            .execute_all((0..16).map(|i| move || Ok(i * 2)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        let tasks: Vec<Box<dyn FnOnce() -> Result<u32, StorageError> + Send>> =
            vec![Box::new(|| Ok(1)), Box::new(|| panic!("inline boom"))];
        assert!(matches!(
            p.execute_all(tasks).unwrap_err(),
            StorageError::WorkerPanicked
        ));
        assert_eq!(p.execute_all(vec![|| Ok(9u8)]).unwrap(), vec![9]);
    }

    #[test]
    fn zero_thread_request_still_executes() {
        let p = ScanExecutor::new(0);
        assert!(p.threads() >= 1);
        let out = p.execute_all(vec![|| Ok(7u8)]).unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn default_pool_sizes_from_host() {
        let p = ScanExecutor::default();
        assert!(p.threads() >= 1);
    }

    #[test]
    fn shutdown_drains_and_joins_workers() {
        let p = Arc::new(ScanExecutor::new(3));
        // Keep the pool busy while shutdown is requested.
        let busy = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let tasks: Vec<_> = (0..32)
                    .map(|i| {
                        move || {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            Ok(i)
                        }
                    })
                    .collect();
                p.execute_all(tasks).unwrap()
            })
        };
        assert!(p.shutdown(Duration::from_secs(10)), "drain within budget");
        assert_eq!(p.threads(), 0);
        // The in-flight batch still completed (caller participation).
        assert_eq!(busy.join().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn pool_still_executes_inline_after_shutdown() {
        let p = ScanExecutor::new(4);
        assert!(p.shutdown(Duration::from_secs(5)));
        // Degraded mode: everything runs inline on this thread.
        let out = p
            .execute_all((0..8).map(|i| move || Ok(i)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        // Idempotent.
        assert!(p.shutdown(Duration::from_millis(10)));
    }
}
