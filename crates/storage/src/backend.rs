//! Storage-unit backends: where encoded partitions physically live.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::RwLock;
use crate::StorageError;

/// Address of one storage unit: `(replica id, partition id)`.
///
/// A BLOT system stores every partition of every replica as one storage
/// unit — "an object stored in Amazon S3, a file on HDFS, a segment of a
/// file on a local file system" (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitKey {
    /// Replica the unit belongs to.
    pub replica: u32,
    /// Partition id within the replica's partitioning scheme.
    pub partition: u32,
}

impl fmt::Display for UnitKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}/p{}", self.replica, self.partition)
    }
}

/// A key-value store of encoded partition bytes.
///
/// Implementations must be safe for concurrent use — map-only jobs read
/// many units in parallel.
pub trait Backend: Send + Sync {
    /// Stores (or replaces) a unit.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on filesystem failures.
    fn put(&self, key: UnitKey, bytes: Vec<u8>) -> Result<(), StorageError>;

    /// Fetches a unit's bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] for missing units or
    /// [`StorageError::Io`] on filesystem failures.
    fn get(&self, key: UnitKey) -> Result<Vec<u8>, StorageError>;

    /// Removes a unit; removing a missing unit is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on filesystem failures.
    fn delete(&self, key: UnitKey) -> Result<(), StorageError>;

    /// Fetches the last `len` bytes of a unit (the whole unit when it is
    /// shorter) plus the unit's total length — the footer-sized ranged
    /// read zone-map pruning relies on, analogous to a parquet footer
    /// fetch.
    ///
    /// The default implementation reads the whole unit and keeps the
    /// tail; backends with genuinely cheap ranged reads override it.
    ///
    /// # Errors
    ///
    /// Same as [`get`](Self::get).
    fn get_tail(&self, key: UnitKey, len: usize) -> Result<(Vec<u8>, u64), StorageError> {
        let mut bytes = self.get(key)?;
        let total = bytes.len() as u64;
        let tail = bytes.split_off(bytes.len().saturating_sub(len));
        drop(bytes);
        Ok((tail, total))
    }

    /// Lists all stored unit keys (sorted).
    fn list(&self) -> Vec<UnitKey>;

    /// Size in bytes of a unit, if present.
    fn size_of(&self, key: UnitKey) -> Option<u64>;

    /// Total bytes stored across all units.
    fn total_bytes(&self) -> u64 {
        self.list().iter().filter_map(|&k| self.size_of(k)).sum()
    }
}

/// In-memory backend for tests and simulations.
#[derive(Debug, Default)]
pub struct MemBackend {
    units: RwLock<HashMap<UnitKey, Vec<u8>>>,
}

impl MemBackend {
    /// Creates an empty backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for MemBackend {
    fn put(&self, key: UnitKey, bytes: Vec<u8>) -> Result<(), StorageError> {
        self.units.write().insert(key, bytes);
        Ok(())
    }

    fn get(&self, key: UnitKey) -> Result<Vec<u8>, StorageError> {
        self.units
            .read()
            .get(&key)
            .cloned()
            .ok_or(StorageError::NotFound { key })
    }

    fn get_tail(&self, key: UnitKey, len: usize) -> Result<(Vec<u8>, u64), StorageError> {
        // Copy only the tail, not the unit: on large units the default
        // whole-unit clone would dwarf the footer read it models.
        let units = self.units.read();
        let bytes = units.get(&key).ok_or(StorageError::NotFound { key })?;
        let total = bytes.len() as u64;
        let start = bytes.len().saturating_sub(len);
        Ok((bytes.get(start..).unwrap_or_default().to_vec(), total))
    }

    fn delete(&self, key: UnitKey) -> Result<(), StorageError> {
        self.units.write().remove(&key);
        Ok(())
    }

    fn list(&self) -> Vec<UnitKey> {
        let mut keys: Vec<UnitKey> = self.units.read().keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn size_of(&self, key: UnitKey) -> Option<u64> {
        self.units.read().get(&key).map(|b| b.len() as u64)
    }
}

/// Filesystem backend: one file per unit under
/// `root/r<replica>/p<partition>.unit`.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Creates the backend, creating `root` if needed.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the root cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|source| StorageError::Io {
            key: UnitKey {
                replica: 0,
                partition: 0,
            },
            source,
        })?;
        Ok(Self { root })
    }

    fn path(&self, key: UnitKey) -> PathBuf {
        self.root
            .join(format!("r{}", key.replica))
            .join(format!("p{}.unit", key.partition))
    }
}

impl Backend for FileBackend {
    fn put(&self, key: UnitKey, bytes: Vec<u8>) -> Result<(), StorageError> {
        let path = self.path(key);
        let io = |source| StorageError::Io { key, source };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
        let mut f = std::fs::File::create(&path).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        Ok(())
    }

    fn get(&self, key: UnitKey) -> Result<Vec<u8>, StorageError> {
        match std::fs::read(self.path(key)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound { key })
            }
            Err(source) => Err(StorageError::Io { key, source }),
        }
    }

    fn get_tail(&self, key: UnitKey, len: usize) -> Result<(Vec<u8>, u64), StorageError> {
        // A real ranged read: seek to the tail instead of slurping the
        // whole file.
        use std::io::{Read, Seek, SeekFrom};
        let io = |source| StorageError::Io { key, source };
        let mut f = match std::fs::File::open(self.path(key)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound { key })
            }
            Err(source) => return Err(StorageError::Io { key, source }),
        };
        let total = f.metadata().map_err(io)?.len();
        f.seek(SeekFrom::Start(total.saturating_sub(len as u64)))
            .map_err(io)?;
        let mut tail = Vec::with_capacity(len);
        f.read_to_end(&mut tail).map_err(io)?;
        Ok((tail, total))
    }

    fn delete(&self, key: UnitKey) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(source) => Err(StorageError::Io { key, source }),
        }
    }

    fn list(&self) -> Vec<UnitKey> {
        let mut keys = Vec::new();
        let Ok(replicas) = std::fs::read_dir(&self.root) else {
            return keys;
        };
        for rep in replicas.flatten() {
            let rname = rep.file_name();
            let Some(replica) = rname
                .to_str()
                .and_then(|s| s.strip_prefix('r'))
                .and_then(|s| s.parse().ok())
            else {
                continue;
            };
            let Ok(units) = std::fs::read_dir(rep.path()) else {
                continue;
            };
            for unit in units.flatten() {
                let uname = unit.file_name();
                let Some(partition) = uname
                    .to_str()
                    .and_then(|s| s.strip_prefix('p'))
                    .and_then(|s| s.strip_suffix(".unit"))
                    .and_then(|s| s.parse().ok())
                else {
                    continue;
                };
                keys.push(UnitKey { replica, partition });
            }
        }
        keys.sort_unstable();
        keys
    }

    fn size_of(&self, key: UnitKey) -> Option<u64> {
        std::fs::metadata(self.path(key)).ok().map(|m| m.len())
    }
}

/// What an injected failure does to reads of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The unit vanishes (disk loss, object deleted).
    Drop,
    /// The unit's bytes are bit-flipped (silent corruption); the decoder
    /// is expected to detect it.
    Corrupt,
}

/// Wraps a backend and injects per-unit failures — the fault model used
/// to demonstrate that diverse replicas "can recover each other when
/// failures occur because they share the same logical view" (§I).
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    failures: RwLock<HashMap<UnitKey, FailureMode>>,
    reads: AtomicU64,
}

impl<B: Backend> FailingBackend<B> {
    /// Wraps `inner` with no failures armed.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            failures: RwLock::new(HashMap::new()),
            reads: AtomicU64::new(0),
        }
    }

    /// Arms a failure for `key`.
    pub fn inject(&self, key: UnitKey, mode: FailureMode) {
        self.failures.write().insert(key, mode);
    }

    /// Clears the failure on `key` (e.g. after repair rewrote the unit).
    pub fn heal(&self, key: UnitKey) {
        self.failures.write().remove(&key);
    }

    /// Number of `get` calls served (including failed ones).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for FailingBackend<B> {
    fn put(&self, key: UnitKey, bytes: Vec<u8>) -> Result<(), StorageError> {
        // A rewrite repairs the unit.
        self.failures.write().remove(&key);
        self.inner.put(key, bytes)
    }

    fn get(&self, key: UnitKey) -> Result<Vec<u8>, StorageError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mode = self.failures.read().get(&key).copied();
        match mode {
            Some(FailureMode::Drop) => Err(StorageError::NotFound { key }),
            Some(FailureMode::Corrupt) => {
                let mut bytes = self.inner.get(key)?;
                // Flip bits across the payload; headers and body both rot.
                let n = bytes.len();
                for i in [n / 3, n / 2, 2 * n / 3] {
                    if let Some(b) = bytes.get_mut(i) {
                        *b ^= 0xA5;
                    }
                }
                Ok(bytes)
            }
            None => self.inner.get(key),
        }
    }

    fn get_tail(&self, key: UnitKey, len: usize) -> Result<(Vec<u8>, u64), StorageError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mode = self.failures.read().get(&key).copied();
        match mode {
            Some(FailureMode::Drop) => Err(StorageError::NotFound { key }),
            Some(FailureMode::Corrupt) => {
                let (mut tail, total) = self.inner.get_tail(key, len)?;
                let n = tail.len();
                for i in [n / 3, n / 2, 2 * n / 3] {
                    if let Some(b) = tail.get_mut(i) {
                        *b ^= 0xA5;
                    }
                }
                Ok((tail, total))
            }
            None => self.inner.get_tail(key, len),
        }
    }

    fn delete(&self, key: UnitKey) -> Result<(), StorageError> {
        self.failures.write().remove(&key);
        self.inner.delete(key)
    }

    fn list(&self) -> Vec<UnitKey> {
        self.inner.list()
    }

    fn size_of(&self, key: UnitKey) -> Option<u64> {
        self.inner.size_of(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Backend) {
        let k1 = UnitKey {
            replica: 0,
            partition: 3,
        };
        let k2 = UnitKey {
            replica: 1,
            partition: 0,
        };
        backend.put(k1, vec![1, 2, 3]).unwrap();
        backend.put(k2, vec![9; 100]).unwrap();
        assert_eq!(backend.get(k1).unwrap(), vec![1, 2, 3]);
        assert_eq!(backend.size_of(k2), Some(100));
        assert_eq!(backend.total_bytes(), 103);
        assert_eq!(backend.list(), vec![k1, k2]);
        // Overwrite.
        backend.put(k1, vec![7]).unwrap();
        assert_eq!(backend.get(k1).unwrap(), vec![7]);
        // Delete + idempotency.
        backend.delete(k1).unwrap();
        backend.delete(k1).unwrap();
        assert!(matches!(
            backend.get(k1),
            Err(StorageError::NotFound { key }) if key == k1
        ));
        assert_eq!(backend.list(), vec![k2]);
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("blot-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FileBackend::new(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failing_backend_drops_and_corrupts() {
        let fb = FailingBackend::new(MemBackend::new());
        let k = UnitKey {
            replica: 0,
            partition: 0,
        };
        fb.put(k, vec![0u8; 64]).unwrap();
        fb.inject(k, FailureMode::Drop);
        assert!(matches!(fb.get(k), Err(StorageError::NotFound { .. })));
        fb.inject(k, FailureMode::Corrupt);
        let bytes = fb.get(k).unwrap();
        assert_ne!(bytes, vec![0u8; 64]);
        // A rewrite heals.
        fb.put(k, vec![1u8; 64]).unwrap();
        assert_eq!(fb.get(k).unwrap(), vec![1u8; 64]);
        assert_eq!(fb.reads(), 3);
    }
}
