//! Storage backends and simulated execution environments for BLOT.
//!
//! The paper evaluates BLOT systems in "two typical execution
//! environments": a local Hadoop cluster (each partition a file on HDFS)
//! and Amazon S3 + EMR (each partition an S3 object scanned by a
//! map-only MapReduce job). Neither is available here, so this crate
//! simulates both on top of *real* encode/decode work:
//!
//! * storage units hold real encoded bytes in a [`Backend`]
//!   (in-memory for tests, on-disk files for realism);
//! * an [`EnvProfile`] models the latency structure of each environment
//!   — per-task startup, per-unit open/locate latency, sequential
//!   transfer bandwidth, and a CPU speed factor;
//! * a [`ScanTask`](scan::ScanTask) really reads, decodes and filters
//!   the unit, charging *simulated milliseconds* = modelled I/O +
//!   measured decode CPU × the profile's CPU factor.
//!
//! Because decode CPU is measured for real, the per-encoding `ScanRate`
//! ordering of Table II (LZMA-class slowest, plain fastest; column
//! faster than row per byte scanned) *emerges* from the codecs instead
//! of being baked into constants — the calibration experiments of §V-B
//! measure it back out of the simulator exactly as the paper measures
//! its clusters.
//!
//! [`job::MapOnlyJob`] runs one scan task per involved partition (the
//! paper's "map-only MapReduce job … with each mapper scanning exactly
//! one of the involved partitions") on a worker pool, reporting both the
//! total resource cost (Σ task times — what Definition 7's `Cost`
//! aggregates) and the wave-based makespan.

//! # Example
//!
//! ```
//! use blot_codec::{Compression, EncodingScheme, Layout};
//! use blot_model::{Record, RecordBatch};
//! use blot_storage::scan::{run_scan, ScanTask};
//! use blot_storage::{Backend, EnvProfile, MemBackend, UnitKey};
//!
//! let batch: RecordBatch =
//!     (0..500).map(|i| Record::new(i, i64::from(i), 121.0, 31.0)).collect();
//! let scheme = EncodingScheme::new(Layout::Row, Compression::Lzf);
//! let backend = MemBackend::new();
//! let key = UnitKey { replica: 0, partition: 0 };
//! backend.put(key, scheme.encode(&batch)).unwrap();
//!
//! let report = run_scan(
//!     &backend,
//!     &EnvProfile::local_cluster(),
//!     &ScanTask { key, scheme, range: None },
//! )
//! .unwrap();
//! assert_eq!(report.records_scanned, 500);
//! assert!(report.sim_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod env;
mod error;
pub mod job;
pub mod pool;
pub mod scan;
pub mod sync;

pub use backend::{Backend, FailingBackend, FailureMode, FileBackend, MemBackend, UnitKey};
pub use env::EnvProfile;
pub use error::StorageError;
pub use pool::ScanExecutor;
