//! Map-only jobs: parallel scans of the involved partitions.
//!
//! §II-D: "it is straightforward to conduct parallel query processing by
//! scanning multiple partitions simultaneously"; the evaluation runs "a
//! map-only MapReduce job … with each mapper scanning exactly one of the
//! involved partitions" (§V-A).

use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::pool::ScanExecutor;
use crate::scan::{run_scan, ScanReport, ScanTask};
use crate::{Backend, EnvProfile, StorageError};

/// A batch of scan tasks executed as one job.
#[derive(Debug, Clone)]
pub struct MapOnlyJob {
    /// One task per involved partition.
    pub tasks: Vec<ScanTask>,
    /// Simultaneous mapper slots (≥ 1).
    pub slots: usize,
}

/// Aggregate result of a job.
#[derive(Debug)]
pub struct JobReport {
    /// Per-task reports, in task order.
    pub reports: Vec<ScanReport>,
    /// Σ of simulated task times — the resource cost the paper's
    /// `Cost(q, r)` models (Equation 7 sums over involved partitions).
    pub total_ms: f64,
    /// Simulated wall-clock with `slots` mappers: greedy longest-first
    /// assignment of tasks to slots.
    pub makespan_ms: f64,
    /// Records that matched the query across all tasks.
    pub records_matched: usize,
}

impl MapOnlyJob {
    /// Creates a job with one slot per task, the paper's configuration
    /// ("20 mappers with each scanning a partition").
    #[must_use]
    pub fn fully_parallel(tasks: Vec<ScanTask>) -> Self {
        let slots = tasks.len().max(1);
        Self { tasks, slots }
    }

    /// Runs all tasks on the shared executor pool (simulated
    /// parallelism is governed by `slots`; host parallelism by the
    /// pool's thread count).
    ///
    /// # Errors
    ///
    /// Fails fast with the first [`StorageError`] encountered; partial
    /// results are discarded, matching a failed MapReduce job.
    pub fn run(
        &self,
        pool: &ScanExecutor,
        backend: &Arc<dyn Backend>,
        env: &EnvProfile,
    ) -> Result<JobReport, StorageError> {
        let env = *env;
        let closures: Vec<_> = self
            .tasks
            .iter()
            .map(|task| {
                let backend = Arc::clone(backend);
                let task = *task;
                move || run_scan(backend.as_ref(), &env, &task)
            })
            .collect();
        let reports = pool.execute_all(closures)?;

        let total_ms: f64 = reports.iter().map(|r| r.sim_ms).sum();
        let makespan_ms = makespan(
            &reports.iter().map(|r| r.sim_ms).collect::<Vec<_>>(),
            self.slots,
        );
        let records_matched = reports.iter().map(|r| r.records_matched).sum();
        Ok(JobReport {
            reports,
            total_ms,
            makespan_ms,
            records_matched,
        })
    }
}

/// A machine load ordered so the *least*-loaded machine pops first from
/// a [`BinaryHeap`] (which is a max-heap): the comparison is reversed,
/// and `total_cmp` keeps it a total order over floats.
#[derive(PartialEq)]
struct MinLoad(f64);

impl Eq for MinLoad {}

impl PartialOrd for MinLoad {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinLoad {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0)
    }
}

/// Greedy longest-processing-time makespan for `durations` on `slots`
/// machines: O(n log slots) via a min-heap of machine loads (the old
/// linear rescan of every slot per task was O(n · slots)).
fn makespan(durations: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut loads: BinaryHeap<MinLoad> = (0..slots).map(|_| MinLoad(0.0)).collect();
    for d in sorted {
        // `slots` is clamped to 1 above, so the heap is never empty.
        if let Some(MinLoad(least)) = loads.pop() {
            loads.push(MinLoad(least + d));
        }
    }
    loads.into_iter().fold(0.0, |acc, MinLoad(l)| acc.max(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemBackend, UnitKey};
    use blot_codec::{Compression, EncodingScheme, Layout};
    use blot_model::{Record, RecordBatch};

    fn backend_with_units(n: u32) -> (Arc<dyn Backend>, EncodingScheme) {
        let scheme = EncodingScheme::new(Layout::Row, Compression::Plain);
        let backend = MemBackend::new();
        for p in 0..n {
            let batch: RecordBatch = (0..500)
                .map(|i| Record::new(i, i64::from(i + p * 1000), 121.0, 31.0))
                .collect();
            backend
                .put(
                    UnitKey {
                        replica: 0,
                        partition: p,
                    },
                    scheme.encode(&batch),
                )
                .unwrap();
        }
        (Arc::new(backend), scheme)
    }

    #[test]
    fn job_aggregates_all_tasks() {
        let pool = ScanExecutor::new(4);
        let (backend, scheme) = backend_with_units(6);
        let tasks: Vec<ScanTask> = (0..6)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        let job = MapOnlyJob::fully_parallel(tasks);
        let report = job
            .run(&pool, &backend, &EnvProfile::local_cluster())
            .unwrap();
        assert_eq!(report.reports.len(), 6);
        assert_eq!(report.records_matched, 3000);
        // Fully parallel: makespan is the longest single task.
        let longest = report.reports.iter().map(|r| r.sim_ms).fold(0.0, f64::max);
        assert!((report.makespan_ms - longest).abs() < 1e-9);
        assert!(report.total_ms >= report.makespan_ms);
        // Reports come back in task order.
        for (i, r) in report.reports.iter().enumerate() {
            assert_eq!(r.key.partition as usize, i);
        }
    }

    #[test]
    fn limited_slots_stretch_the_makespan() {
        let pool = ScanExecutor::new(4);
        let (backend, scheme) = backend_with_units(8);
        let tasks: Vec<ScanTask> = (0..8)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        let parallel = MapOnlyJob {
            tasks: tasks.clone(),
            slots: 8,
        }
        .run(&pool, &backend, &EnvProfile::local_cluster())
        .unwrap();
        let serial = MapOnlyJob { tasks, slots: 1 }
            .run(&pool, &backend, &EnvProfile::local_cluster())
            .unwrap();
        assert!(serial.makespan_ms > 3.0 * parallel.makespan_ms);
        assert!((serial.makespan_ms - serial.total_ms).abs() < 1e-6);
    }

    #[test]
    fn failing_task_fails_the_job() {
        let pool = ScanExecutor::new(4);
        let (backend, scheme) = backend_with_units(3);
        let mut tasks: Vec<ScanTask> = (0..3)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        tasks.push(ScanTask {
            key: UnitKey {
                replica: 0,
                partition: 77,
            },
            scheme,
            range: None,
        });
        let job = MapOnlyJob::fully_parallel(tasks);
        assert!(job
            .run(&pool, &backend, &EnvProfile::local_cluster())
            .is_err());
    }

    #[test]
    fn makespan_helper_is_sane() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(makespan(&[5.0], 4), 5.0);
        assert_eq!(makespan(&[3.0, 3.0, 3.0, 3.0], 2), 6.0);
        // LPT on {5,4,3,3,3} over 2 slots: loads 5,4 → add 3 to
        // 4 (7), add 3 to 5 (8), add 3 to 7 (10). Result 10.
        assert_eq!(makespan(&[5.0, 4.0, 3.0, 3.0, 3.0], 2), 10.0);
    }
}
