//! Map-only jobs: parallel scans of the involved partitions.
//!
//! §II-D: "it is straightforward to conduct parallel query processing by
//! scanning multiple partitions simultaneously"; the evaluation runs "a
//! map-only MapReduce job … with each mapper scanning exactly one of the
//! involved partitions" (§V-A).

use crate::scan::{run_scan, ScanReport, ScanTask};
use crate::{Backend, EnvProfile, StorageError};

/// A batch of scan tasks executed as one job.
#[derive(Debug, Clone)]
pub struct MapOnlyJob {
    /// One task per involved partition.
    pub tasks: Vec<ScanTask>,
    /// Simultaneous mapper slots (≥ 1).
    pub slots: usize,
}

/// Aggregate result of a job.
#[derive(Debug)]
pub struct JobReport {
    /// Per-task reports, in task order.
    pub reports: Vec<ScanReport>,
    /// Σ of simulated task times — the resource cost the paper's
    /// `Cost(q, r)` models (Equation 7 sums over involved partitions).
    pub total_ms: f64,
    /// Simulated wall-clock with `slots` mappers: greedy longest-first
    /// assignment of tasks to slots.
    pub makespan_ms: f64,
    /// Records that matched the query across all tasks.
    pub records_matched: usize,
}

impl MapOnlyJob {
    /// Creates a job with one slot per task, the paper's configuration
    /// ("20 mappers with each scanning a partition").
    #[must_use]
    pub fn fully_parallel(tasks: Vec<ScanTask>) -> Self {
        let slots = tasks.len().max(1);
        Self { tasks, slots }
    }

    /// Runs all tasks (host-parallel up to 8 threads; simulated
    /// parallelism is governed by `slots`).
    ///
    /// # Errors
    ///
    /// Fails fast with the first [`StorageError`] encountered; partial
    /// results are discarded, matching a failed MapReduce job.
    pub fn run(&self, backend: &dyn Backend, env: &EnvProfile) -> Result<JobReport, StorageError> {
        let host_threads = self.tasks.len().clamp(1, 8);
        let chunks: Vec<Vec<ScanTask>> = (0..host_threads)
            .map(|t| {
                self.tasks
                    .iter()
                    .skip(t)
                    .step_by(host_threads)
                    .copied()
                    .collect()
            })
            .collect();
        let results: Vec<Result<Vec<(usize, ScanReport)>, StorageError>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .enumerate()
                    .map(|(t, chunk)| {
                        s.spawn(move || {
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(i, task)| {
                                    run_scan(backend, env, task).map(|r| (t + i * host_threads, r))
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(Err(StorageError::WorkerPanicked)))
                    .collect()
            });

        let mut indexed: Vec<(usize, ScanReport)> = Vec::with_capacity(self.tasks.len());
        for r in results {
            indexed.extend(r?);
        }
        indexed.sort_by_key(|(i, _)| *i);
        let reports: Vec<ScanReport> = indexed.into_iter().map(|(_, r)| r).collect();

        let total_ms: f64 = reports.iter().map(|r| r.sim_ms).sum();
        let makespan_ms = makespan(
            &reports.iter().map(|r| r.sim_ms).collect::<Vec<_>>(),
            self.slots,
        );
        let records_matched = reports.iter().map(|r| r.records_matched).sum();
        Ok(JobReport {
            reports,
            total_ms,
            makespan_ms,
            records_matched,
        })
    }
}

/// Greedy longest-processing-time makespan for `durations` on `slots`
/// machines.
fn makespan(durations: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0.0f64; slots];
    for d in sorted {
        // `slots` is clamped to 1 above, so a least-loaded machine
        // always exists.
        if let Some(min) = loads
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        {
            *min += d;
        }
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemBackend, UnitKey};
    use blot_codec::{Compression, EncodingScheme, Layout};
    use blot_model::{Record, RecordBatch};

    fn backend_with_units(n: u32) -> (MemBackend, EncodingScheme) {
        let scheme = EncodingScheme::new(Layout::Row, Compression::Plain);
        let backend = MemBackend::new();
        for p in 0..n {
            let batch: RecordBatch = (0..500)
                .map(|i| Record::new(i, i64::from(i + p * 1000), 121.0, 31.0))
                .collect();
            backend
                .put(
                    UnitKey {
                        replica: 0,
                        partition: p,
                    },
                    scheme.encode(&batch),
                )
                .unwrap();
        }
        (backend, scheme)
    }

    #[test]
    fn job_aggregates_all_tasks() {
        let (backend, scheme) = backend_with_units(6);
        let tasks: Vec<ScanTask> = (0..6)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        let job = MapOnlyJob::fully_parallel(tasks);
        let report = job.run(&backend, &EnvProfile::local_cluster()).unwrap();
        assert_eq!(report.reports.len(), 6);
        assert_eq!(report.records_matched, 3000);
        // Fully parallel: makespan is the longest single task.
        let longest = report.reports.iter().map(|r| r.sim_ms).fold(0.0, f64::max);
        assert!((report.makespan_ms - longest).abs() < 1e-9);
        assert!(report.total_ms >= report.makespan_ms);
        // Reports come back in task order.
        for (i, r) in report.reports.iter().enumerate() {
            assert_eq!(r.key.partition as usize, i);
        }
    }

    #[test]
    fn limited_slots_stretch_the_makespan() {
        let (backend, scheme) = backend_with_units(8);
        let tasks: Vec<ScanTask> = (0..8)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        let parallel = MapOnlyJob {
            tasks: tasks.clone(),
            slots: 8,
        }
        .run(&backend, &EnvProfile::local_cluster())
        .unwrap();
        let serial = MapOnlyJob { tasks, slots: 1 }
            .run(&backend, &EnvProfile::local_cluster())
            .unwrap();
        assert!(serial.makespan_ms > 3.0 * parallel.makespan_ms);
        assert!((serial.makespan_ms - serial.total_ms).abs() < 1e-6);
    }

    #[test]
    fn failing_task_fails_the_job() {
        let (backend, scheme) = backend_with_units(3);
        let mut tasks: Vec<ScanTask> = (0..3)
            .map(|p| ScanTask {
                key: UnitKey {
                    replica: 0,
                    partition: p,
                },
                scheme,
                range: None,
            })
            .collect();
        tasks.push(ScanTask {
            key: UnitKey {
                replica: 0,
                partition: 77,
            },
            scheme,
            range: None,
        });
        let job = MapOnlyJob::fully_parallel(tasks);
        assert!(job.run(&backend, &EnvProfile::local_cluster()).is_err());
    }

    #[test]
    fn makespan_helper_is_sane() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(makespan(&[5.0], 4), 5.0);
        assert_eq!(makespan(&[3.0, 3.0, 3.0, 3.0], 2), 6.0);
        // LPT on {5,4,3,3,3} over 2 slots: {5,3,3}? no — LPT gives
        // 5+3 = 8 vs 4+3+3 = 10 → 10? Let's verify: loads 5,4 → add 3 to
        // 4 (7), add 3 to 5 (8), add 3 to 7 (10). Result 10.
        assert_eq!(makespan(&[5.0, 4.0, 3.0, 3.0, 3.0], 2), 10.0);
    }
}
