use std::fmt;

use blot_codec::CodecError;

use crate::UnitKey;

/// Error reading or writing storage units.
#[derive(Debug)]
pub enum StorageError {
    /// The requested unit does not exist (or was dropped by failure
    /// injection).
    NotFound {
        /// The missing unit.
        key: UnitKey,
    },
    /// The unit's bytes exist but no longer decode (bit rot, torn write,
    /// or injected corruption).
    Corrupt {
        /// The damaged unit.
        key: UnitKey,
        /// Decoder diagnosis.
        source: CodecError,
    },
    /// Underlying filesystem error.
    Io {
        /// The unit being accessed.
        key: UnitKey,
        /// The OS error.
        source: std::io::Error,
    },
    /// A scan worker thread panicked instead of returning a result.
    WorkerPanicked,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFound { key } => write!(f, "storage unit {key} not found"),
            Self::Corrupt { key, source } => write!(f, "storage unit {key} corrupt: {source}"),
            Self::Io { key, source } => write!(f, "I/O error on storage unit {key}: {source}"),
            Self::WorkerPanicked => write!(f, "a scan worker thread panicked"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::NotFound { .. } => None,
            Self::Corrupt { source, .. } => Some(source),
            Self::Io { source, .. } => Some(source),
            Self::WorkerPanicked => None,
        }
    }
}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<StorageError>()
};
