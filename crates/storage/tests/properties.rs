//! Property tests for storage backends and job scheduling.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_storage::{Backend, MemBackend, UnitKey};
use proptest::prelude::*;
use std::collections::HashMap;

/// Abstract operations against a backend.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8, Vec<u8>),
    Get(u8, u8),
    Delete(u8, u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..8, prop::collection::vec(any::<u8>(), 0..50))
                .prop_map(|(r, p, b)| Op::Put(r, p, b)),
            (0u8..4, 0u8..8).prop_map(|(r, p)| Op::Get(r, p)),
            (0u8..4, 0u8..8).prop_map(|(r, p)| Op::Delete(r, p)),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn mem_backend_behaves_like_a_map(ops in arb_ops()) {
        let backend = MemBackend::new();
        let mut model: HashMap<UnitKey, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(r, p, bytes) => {
                    let key = UnitKey { replica: r.into(), partition: p.into() };
                    backend.put(key, bytes.clone()).unwrap();
                    model.insert(key, bytes);
                }
                Op::Get(r, p) => {
                    let key = UnitKey { replica: r.into(), partition: p.into() };
                    match (backend.get(key), model.get(&key)) {
                        (Ok(a), Some(b)) => prop_assert_eq!(&a, b),
                        (Err(_), None) => {}
                        (got, want) => prop_assert!(
                            false,
                            "mismatch at {key}: backend {:?} vs model {:?}",
                            got.map(|v| v.len()),
                            want.map(Vec::len)
                        ),
                    }
                }
                Op::Delete(r, p) => {
                    let key = UnitKey { replica: r.into(), partition: p.into() };
                    backend.delete(key).unwrap();
                    model.remove(&key);
                }
            }
            // Aggregates always agree.
            prop_assert_eq!(backend.list().len(), model.len());
            prop_assert_eq!(
                backend.total_bytes(),
                model.values().map(|v| v.len() as u64).sum::<u64>()
            );
        }
        // Listing is sorted and complete.
        let mut keys: Vec<UnitKey> = model.keys().copied().collect();
        keys.sort_unstable();
        prop_assert_eq!(backend.list(), keys);
    }
}

/// The makespan helper is private; exercise it through MapOnlyJob by
/// constructing jobs over an in-memory backend with plain units.
mod makespan_bounds {
    use super::*;
    use blot_codec::{Compression, EncodingScheme, Layout};
    use blot_model::{Record, RecordBatch};
    use blot_storage::job::MapOnlyJob;
    use blot_storage::scan::ScanTask;
    use blot_storage::{EnvProfile, ScanExecutor};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn makespan_respects_classic_bounds(
            sizes in prop::collection::vec(10usize..300, 1..12),
            slots in 1usize..6,
        ) {
            let scheme = EncodingScheme::new(Layout::Row, Compression::Plain);
            let backend = MemBackend::new();
            let mut tasks = Vec::new();
            for (p, &n) in sizes.iter().enumerate() {
                let batch: RecordBatch =
                    (0..n).map(|i| Record::new(i as u32, i as i64, 121.0, 31.0)).collect();
                let key = UnitKey { replica: 0, partition: p as u32 };
                backend.put(key, scheme.encode(&batch)).unwrap();
                tasks.push(ScanTask { key, scheme, range: None });
            }
            let job = MapOnlyJob { tasks, slots };
            let pool = ScanExecutor::new(4);
            let backend: Arc<dyn Backend> = Arc::new(backend);
            let report = job.run(&pool, &backend, &EnvProfile::local_cluster()).unwrap();
            let durations: Vec<f64> = report.reports.iter().map(|r| r.sim_ms).collect();
            let longest = durations.iter().copied().fold(0.0, f64::max);
            let total: f64 = durations.iter().sum();
            // max ≤ makespan ≤ total, and makespan ≥ total / slots.
            prop_assert!(report.makespan_ms + 1e-9 >= longest);
            prop_assert!(report.makespan_ms <= total + 1e-9);
            prop_assert!(report.makespan_ms + 1e-9 >= total / slots as f64);
            // Graham's list-scheduling bound: Cmax ≤ total/m + longest.
            prop_assert!(report.makespan_ms <= total / slots as f64 + longest + 1e-6);
        }
    }
}
