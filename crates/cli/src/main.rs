//! `blot` — command-line front end for the diverse-replica store.
//!
//! ```text
//! blot generate --out fleet.csv [--taxis 200] [--records 250] [--seed 7]
//! blot build    --data fleet.csv --store ./store --replica S16xT8/ROW-SNAPPY [--replica …]
//! blot info     --store ./store
//! blot query    --store ./store --center LON,LAT,T --size W,H,T [--limit 5]
//! blot select   --data fleet.csv --budget-copies 3 [--exact] [--records 65000000]
//! blot scrub    --store ./store
//! blot repair   --store ./store
//! blot stats    --store ./store [--queries 12] [--probe centroid|tail|mixed] [--json] [--band 0.5,2.0]
//! blot serve    --store ./store [--addr 127.0.0.1:7407] [--max-conns 64] [--queue-depth 256]
//! blot query    --remote 127.0.0.1:7407 --center LON,LAT,T --size W,H,T
//! blot stats    --remote 127.0.0.1:7407 [--json]
//! ```
//!
//! A store directory holds one file per storage unit plus
//! `manifest.json` describing the universe and each replica's
//! partitioning scheme, so stores reopen without the original data.

mod args;
mod manifest;

use blot_core::prelude::*;
use blot_json::Json;
use blot_mip::MipSolver;
use blot_storage::FileBackend;
use blot_tracegen::FleetConfig;
use std::process::ExitCode;

use args::Args;
use manifest::Manifest;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut command = command.as_str();
    let mut rest = rest;
    // `route` takes a subcommand word (`blot route serve …`), which the
    // flag-only parser would reject as positional — peel it off here.
    if command == "route" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "serve" => {
                command = "route-serve";
                rest = tail;
            }
            _ => {
                eprintln!("error: `blot route` requires the `serve` subcommand\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "generate" => cmd_generate(&args),
        "build" => cmd_build(&args),
        "info" => cmd_info(&args),
        "query" => cmd_query(&args),
        "select" => cmd_select(&args),
        "scrub" => cmd_scrub(&args),
        "repair" => cmd_repair(&args),
        "stats" => cmd_stats(&args),
        "trace" => cmd_trace(&args),
        "serve" => cmd_serve(&args),
        "route-serve" => cmd_route_serve(&args),
        "help" | "--help" | "-h" => {
            pipe_println(USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
blot — diverse-replica storage for location tracking data

commands:
  generate  --out FILE [--taxis N] [--records N] [--seed N]
  build     --data FILE --store DIR --replica SPEC/ENC [--replica …] [--env local|cloud]
  info      --store DIR
  query     --store DIR --center LON,LAT,T --size W,H,T [--limit N] [--replica-id N]
  query     --remote ADDR --center LON,LAT,T --size W,H,T [--limit N] [--trace]
  select    --data FILE [--budget-copies X] [--exact] [--records N] [--env local|cloud]
  scrub     --store DIR
  repair    --store DIR
  stats     --store DIR [--queries N] [--probe centroid|tail|mixed] [--json] [--band LO,HI]
  stats     --remote ADDR [--json] [--band LO,HI]
  trace     --store DIR [--queries N] [--json|--chrome] [--slow MS] [--last N] [--slow-log MS]
  trace     --remote ADDR [--json|--chrome] [--slow MS] [--last N]
  serve     --store DIR [--addr HOST:PORT] [--max-conns N] [--queue-depth N] [--handlers N]
            [--slow-log MS]
  route serve --shard ADDR [--shard ADDR …] [--addr HOST:PORT] [--cuts V1,V2,…] [--axis x|y|t]
            [--map-version N] [--conns-per-shard N] [--shard-retries N]
  query     --coordinator ADDR --center LON,LAT,T --size W,H,T [--limit N] [--trace]
  stats     --coordinator ADDR [--json]

`route serve` runs a scatter-gather coordinator over running `serve`
shards: records are placed by OID hash by default, or by region slabs
when --cuts (interior cut points on --axis, default t) is given.

replica syntax: S<spatial>xT<temporal>/<LAYOUT>-<CODEC>, e.g. S64xT16/COL-GZIP
  spatial ∈ {4,16,64,256,1024,4096}; temporal a power of two
  encodings: ROW-PLAIN ROW-SNAPPY ROW-GZIP ROW-LZMA COL-SNAPPY COL-GZIP COL-LZMA";

fn parse_env(args: &Args) -> Result<EnvProfile, String> {
    match args.get("env").unwrap_or("local") {
        "local" => Ok(EnvProfile::local_cluster()),
        "cloud" => Ok(EnvProfile::cloud_object_store()),
        other => Err(format!("unknown --env `{other}` (expected local|cloud)")),
    }
}

fn load_csv(path: &str) -> Result<RecordBatch, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    RecordBatch::from_csv(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let mut config = FleetConfig::small();
    if let Some(n) = args.get_parsed::<u32>("taxis")? {
        config.num_taxis = n;
    }
    if let Some(n) = args.get_parsed::<u32>("records")? {
        config.records_per_taxi = n;
    }
    if let Some(n) = args.get_parsed::<u64>("seed")? {
        config.seed = n;
    }
    let batch = config.generate();
    std::fs::write(out, batch.to_csv()).map_err(|e| format!("cannot write {out}: {e}"))?;
    pipe_println(&format!(
        "wrote {} records from {} taxis to {out}",
        batch.len(),
        config.num_taxis
    ));
    Ok(())
}

fn universe_for(batch: &RecordBatch) -> Result<Cuboid, String> {
    // A tight bounding box breaks future inserts on the boundary; pad 1%.
    let bb = batch
        .bounding_box()
        .ok_or_else(|| "dataset is empty".to_owned())?;
    let pad = |lo: f64, hi: f64| {
        let d = (hi - lo).max(1e-9) * 0.01;
        (lo - d, hi + d)
    };
    let (x0, x1) = pad(bb.min().x, bb.max().x);
    let (y0, y1) = pad(bb.min().y, bb.max().y);
    let (t0, t1) = pad(bb.min().t, bb.max().t);
    Ok(Cuboid::new(Point::new(x0, y0, t0), Point::new(x1, y1, t1)))
}

fn cmd_build(args: &Args) -> Result<(), String> {
    let data_path = args.require("data")?;
    let store_dir = args.require("store")?;
    let configs: Vec<ReplicaConfig> = args
        .get_all("replica")
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()?;
    if configs.is_empty() {
        return Err("at least one --replica is required".into());
    }
    let env = parse_env(args)?;
    let data = load_csv(data_path)?;
    if data.is_empty() {
        return Err("input data is empty".into());
    }
    let universe = universe_for(&data)?;
    let model = CostModel::calibrate(&env, &data, 0xB107);
    let backend = FileBackend::new(store_dir).map_err(|e| e.to_string())?;
    let mut store = BlotStore::new(backend, env, universe, model);
    for config in &configs {
        let id = store
            .build_replica(&data, *config)
            .map_err(|e| e.to_string())?;
        if let Some(r) = store.replicas().get(id as usize) {
            pipe_println(&format!(
                "built replica {id}: {config} — {} units, {:.1} KiB",
                r.scheme.len(),
                r.bytes as f64 / 1024.0
            ));
        }
    }
    Manifest::from_store(&store).save(store_dir)?;
    pipe_println(&format!(
        "store ready at {store_dir} ({:.1} KiB total, manifest.json written)",
        store.total_bytes() as f64 / 1024.0
    ));
    Ok(())
}

fn open_store(args: &Args) -> Result<BlotStore<FileBackend>, String> {
    let store_dir = args.require("store")?;
    let env = parse_env(args)?;
    Manifest::load(store_dir)?.open(store_dir, env)
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let store = open_store(args)?;
    let u = store.universe();
    pipe_println(&format!(
        "universe: lon [{:.4}, {:.4}] lat [{:.4}, {:.4}] time [{:.0}, {:.0}]",
        u.min().x,
        u.max().x,
        u.min().y,
        u.max().y,
        u.min().t,
        u.max().t
    ));
    for r in store.replicas() {
        pipe_println(&format!(
            "replica {}: {} — {} partitions, {} records, {:.1} KiB",
            r.id,
            r.config,
            r.scheme.len(),
            r.records,
            r.bytes as f64 / 1024.0
        ));
    }
    Ok(())
}

fn parse_triple(s: &str, what: &str) -> Result<(f64, f64, f64), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!(
            "{what} must be three comma-separated numbers, got `{s}`"
        ));
    }
    let mut vals = [0.0; 3];
    for (v, p) in vals.iter_mut().zip(&parts) {
        *v = p
            .trim()
            .parse()
            .map_err(|_| format!("bad number `{p}` in {what}"))?;
    }
    Ok((vals[0], vals[1], vals[2]))
}

/// Prints a line, exiting quietly if stdout is a closed pipe (e.g. the
/// output is being piped into `head`). Any *other* write failure — a
/// full disk, an I/O error on a redirected file — is reported on stderr
/// and exits non-zero (74, `EX_IOERR`): silently dropping output while
/// reporting success would corrupt whatever consumes it.
fn pipe_println(line: &str) {
    use std::io::Write;
    if let Err(e) = writeln!(std::io::stdout(), "{line}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: cannot write to stdout: {e}");
        std::process::exit(74);
    }
}

/// Shared result rendering for the local and remote query paths (the
/// wire reply carries the zone-map skip count since protocol revision
/// adding trace support, so both paths report it).
fn print_query_result(
    records: &RecordBatch,
    replica: u32,
    partitions_scanned: usize,
    units_skipped: usize,
    sim_ms: f64,
    makespan_ms: f64,
    limit: usize,
) {
    let skipped = match units_skipped {
        n if n > 0 => format!(" ({n} skipped via zone maps)"),
        _ => String::new(),
    };
    pipe_println(&format!(
        "{} records from replica {} — {} partitions scanned{}, {:.0} simulated ms ({:.0} ms wall)",
        records.len(),
        replica,
        partitions_scanned,
        skipped,
        sim_ms,
        makespan_ms
    ));
    for r in records.iter().take(limit) {
        pipe_println(&format!("  {}", r.to_csv_line()));
    }
    if records.len() > limit {
        pipe_println(&format!("  … {} more", records.len() - limit));
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let (cx, cy, ct) = parse_triple(args.require("center")?, "--center")?;
    let (w, h, t) = parse_triple(args.require("size")?, "--size")?;
    let range = Cuboid::from_centroid(Point::new(cx, cy, ct), QuerySize::new(w, h, t));
    let limit = args.get_parsed::<usize>("limit")?.unwrap_or(5);
    // A coordinator speaks the same wire protocol as a single server;
    // `--coordinator` is routing documentation, not a different client.
    let remote = args.get("remote").or_else(|| args.get("coordinator"));
    if let Some(addr) = remote {
        if args.get("replica-id").is_some() {
            return Err(
                "--replica-id is not supported with --remote (routing is server-side)".into(),
            );
        }
        let mut client =
            blot_server::Client::connect(addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;
        // `--trace` opens a client-side trace context and ships it with
        // the query; the server parents its whole span tree under it
        // (inspect with `blot trace --remote ADDR`).
        let ctx = args.has("trace").then(blot_obs::SpanContext::fresh);
        let result = client
            .query_traced(&range, ctx)
            .map_err(|e| e.to_string())?;
        print_query_result(
            &result.records,
            result.replica,
            usize::try_from(result.partitions_scanned).unwrap_or(usize::MAX),
            usize::try_from(result.units_skipped).unwrap_or(usize::MAX),
            result.sim_ms,
            result.makespan_ms,
            limit,
        );
        if let Some(ctx) = ctx {
            pipe_println(&format!(
                "trace {} — admission {:.3} ms, batch {:.3} ms, store {:.3} ms",
                ctx.trace, result.admission_ms, result.batch_ms, result.store_ms
            ));
        }
        return Ok(());
    }
    let store = open_store(args)?;
    let result = if let Some(id) = args.get_parsed::<u32>("replica-id")? {
        store.query_on(id, &range)
    } else {
        store.query(&range)
    }
    .map_err(|e| e.to_string())?;
    print_query_result(
        &result.records,
        result.replica,
        result.partitions_scanned,
        result.units_skipped,
        result.sim_ms,
        result.makespan_ms,
        limit,
    );
    Ok(())
}

fn cmd_select(args: &Args) -> Result<(), String> {
    let data_path = args.require("data")?;
    let env = parse_env(args)?;
    let data = load_csv(data_path)?;
    if data.is_empty() {
        return Err("input data is empty".into());
    }
    let universe = universe_for(&data)?;
    let model = CostModel::calibrate(&env, &data, 0xB107);
    let candidates = ReplicaConfig::grid(&SchemeSpec::paper_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&universe);
    #[allow(clippy::cast_precision_loss)]
    let records = args
        .get_parsed::<u64>("records")?
        .map_or(data.len() as f64, |n| n as f64);
    let matrix =
        CostMatrix::estimate_scaled(&model, &workload, &candidates, &data, universe, records);
    let copies = args.get_parsed::<f64>("budget-copies")?.unwrap_or(3.0);
    let budget = copies
        * matrix
            .storage
            .get(matrix.optimal_single().0)
            .copied()
            .unwrap_or(blot_core::units::Bytes::ZERO);
    let kept = prune_dominated(&matrix);
    pipe_println(&format!(
        "{} candidates ({} after dominance pruning), budget = {:.2} GiB",
        matrix.n_candidates(),
        kept.len(),
        budget.get() / (1024.0 * 1024.0 * 1024.0)
    ));
    let selection = if args.has("exact") {
        select_mip(&matrix, budget, &MipSolver::default()).map_err(|e| e.to_string())?
    } else {
        select_greedy(&matrix, budget)
    };
    let ideal = ideal_cost(&matrix);
    pipe_println(&format!(
        "selected {} replicas — estimated workload cost {:.3e} ms ({:.2}× the ideal):",
        selection.chosen.len(),
        selection.workload_cost,
        selection.workload_cost / ideal
    ));
    for &j in &selection.chosen {
        let (Some(cand), Some(&stored)) = (candidates.get(j), matrix.storage.get(j)) else {
            continue;
        };
        pipe_println(&format!(
            "  {cand} — {:.2} GiB",
            stored.get() / (1024.0 * 1024.0 * 1024.0)
        ));
    }
    Ok(())
}

fn cmd_scrub(args: &Args) -> Result<(), String> {
    let store = open_store(args)?;
    let damaged = store.scrub().map_err(|e| format!("scrub failed: {e}"))?;
    let m = store.metrics();
    if blot_obs::enabled() {
        pipe_println(&format!(
            "scanned {} units: {} verified, {} damaged ({} footer mismatches)",
            m.scrub_units_scanned.value(),
            m.scrub_units_verified.value(),
            m.scrub_units_damaged.value(),
            m.scrub_footer_mismatches.value()
        ));
    }
    if damaged.is_empty() {
        pipe_println(&format!(
            "all {} units healthy",
            store
                .replicas()
                .iter()
                .map(|r| r.scheme.len())
                .sum::<usize>()
        ));
    } else {
        pipe_println(&format!("{} damaged units:", damaged.len()));
        for key in damaged {
            pipe_println(&format!("  {key}"));
        }
    }
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), String> {
    let store = open_store(args)?;
    let report = store.repair_all().map_err(|e| e.to_string())?;
    if blot_obs::enabled() {
        pipe_println(&format!(
            "scanned {} units ({} verified clean, {} footer mismatches)",
            report.units_scanned, report.units_verified, report.units_footer_mismatch
        ));
    }
    pipe_println(&format!(
        "repaired {} units, {} unrecoverable",
        report.units_repaired, report.units_failed
    ));
    for key in &report.unrecoverable {
        pipe_println(&format!("  unrecoverable: {key}"));
    }
    if report.unrecoverable.is_empty() {
        Ok(())
    } else {
        Err("some units could not be recovered".into())
    }
}

/// Parses `--band LO,HI` into a [`DriftBand`] (defaults otherwise).
fn parse_band(args: &Args) -> Result<DriftBand, String> {
    let Some(s) = args.get("band") else {
        return Ok(DriftBand::default());
    };
    let parts: Vec<&str> = s.split(',').collect();
    let [lo, hi] = parts.as_slice() else {
        return Err(format!("--band must be LO,HI, got `{s}`"));
    };
    let parse = |p: &str| -> Result<f64, String> {
        p.trim()
            .parse()
            .map_err(|_| format!("bad number `{p}` in --band"))
    };
    Ok(DriftBand {
        lo: parse(lo)?,
        hi: parse(hi)?,
        ..DriftBand::default()
    })
}

// The server's `Stats` reply and the local path must render drift
// identically, so the JSON shape lives in `blot_server::stats`.
use blot_server::stats::drift_to_json;

/// Runs a deterministic probe workload (centroid queries of shrinking
/// extent alternating with "everything since T" tail probes of
/// shrinking tail, plus one scrub pass) against an existing store and
/// reports the collected metrics and the cost-model drift per encoding
/// scheme. The tail probes are the zone-map-sensitive half: on a store
/// whose units carry footers they prune, which is exactly the workload
/// shape whose measured cost drifts away from the Eq. 6 prediction.
/// `blot stats --remote ADDR`: fetch the server's `Stats` reply and
/// render the same text/JSON the local path produces.
fn cmd_stats_remote(args: &Args, addr: &str) -> Result<(), String> {
    let band = if args.get("band").is_some() {
        Some(parse_band(args)?)
    } else {
        None
    };
    let mut client =
        blot_server::Client::connect(addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let json = client.stats(band).map_err(|e| e.to_string())?;
    let doc = Json::parse(&json).map_err(|e| format!("server sent invalid stats JSON: {e}"))?;
    if args.has("json") {
        // Drop the pre-rendered text: the JSON consumer has the
        // structured fields.
        let filtered = match doc {
            Json::Obj(pairs) => Json::Obj(pairs.into_iter().filter(|(k, _)| k != "text").collect()),
            other => other,
        };
        pipe_println(&filtered.to_string());
        return Ok(());
    }
    let text = doc
        .get("text")
        .and_then(Json::as_str)
        .ok_or_else(|| "stats reply carries no text rendering".to_owned())?;
    pipe_println(text.trim_end());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    if let Some(addr) = args.get("remote").or_else(|| args.get("coordinator")) {
        return cmd_stats_remote(args, addr);
    }
    let store = open_store(args)?;
    let rounds = args.get_parsed::<u32>("queries")?.unwrap_or(12);
    let band = parse_band(args)?;
    let probe = args.get("probe").unwrap_or("mixed");
    if !matches!(probe, "centroid" | "tail" | "mixed") {
        return Err(format!(
            "unknown --probe `{probe}` (expected centroid|tail|mixed)"
        ));
    }
    let u = store.universe();
    let centroid_probe = |j: u32| {
        let f = 2.0 + f64::from(j);
        Cuboid::from_centroid(
            u.centroid(),
            QuerySize::new(u.extent(0) / f, u.extent(1) / f, u.extent(2) / f),
        )
    };
    // Full spatial extent, trailing 1/2^(j+1) of the time axis: a
    // geometric "everything since T" ladder whose thin slivers land
    // inside the per-cell last-fix spread, where zone maps prune whole
    // units.
    let tail_probe = |j: u32| {
        let f = f64::from(2u32.saturating_pow((j + 1).min(16)));
        Cuboid::new(
            Point::new(u.min().x, u.min().y, u.max().t - u.extent(2) / f),
            u.max(),
        )
    };
    for k in 0..rounds {
        let q = match probe {
            "centroid" => centroid_probe(k),
            "tail" => tail_probe(k),
            _ if k % 2 == 0 => centroid_probe(k / 2),
            _ => tail_probe(k / 2),
        };
        store
            .query(&q)
            .map_err(|e| format!("probe query failed: {e}"))?;
    }
    let damaged = store.scrub().map_err(|e| format!("scrub failed: {e}"))?;
    let snapshot = store.metrics_snapshot();
    let drift = store.drift_report(band);
    if args.has("json") {
        let metrics = Json::parse(&snapshot.to_json())
            .map_err(|e| format!("internal error: metrics snapshot is not valid JSON: {e}"))?;
        let doc = Json::obj([
            ("enabled", Json::Bool(blot_obs::enabled())),
            ("metrics", metrics),
            ("drift", drift_to_json(&drift)),
        ]);
        pipe_println(&doc.to_string());
        return Ok(());
    }
    if !blot_obs::enabled() {
        pipe_println("metrics are compiled out (blot-obs `off` feature)");
    }
    pipe_println(snapshot.render_text().trim_end());
    pipe_println("");
    pipe_println(&format!(
        "cost-model drift (median predicted/actual, band [{}, {}], min {} samples):",
        drift.band.lo, drift.band.hi, drift.band.min_samples
    ));
    for row in &drift.schemes {
        if row.samples == 0 {
            continue;
        }
        pipe_println(&format!(
            "  {:<12} {:>6} samples  median {:>8.3}  mean {:>8.3}  {}",
            row.scheme.metric_label(),
            row.samples,
            row.median_ratio,
            row.mean_ratio,
            if row.flagged { "DRIFTED" } else { "ok" }
        ));
    }
    if drift.schemes.iter().all(|s| s.samples == 0) {
        pipe_println("  (no drift samples)");
    }
    if !damaged.is_empty() {
        pipe_println(&format!(
            "note: scrub found {} damaged units",
            damaged.len()
        ));
    }
    Ok(())
}

/// Converts the server's span-JSON array into Chrome `trace_event`
/// JSON client-side: the wire carries one canonical span shape, and
/// presentation (Chrome, text) is the CLI's job.
fn trace_json_to_chrome(doc: &Json) -> Result<String, String> {
    let items = doc
        .as_array()
        .ok_or_else(|| "trace reply is not a JSON array".to_owned())?;
    let mut lanes: Vec<&str> = Vec::new();
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        let trace = item.get("trace").and_then(Json::as_str).unwrap_or("?");
        let tid = match lanes.iter().position(|t| *t == trace) {
            Some(p) => p + 1,
            None => {
                lanes.push(trace);
                lanes.len()
            }
        };
        if i > 0 {
            out.push(',');
        }
        let name = item.get("name").and_then(Json::as_str).unwrap_or("?");
        let ts = item.get("start_us").and_then(Json::as_u64).unwrap_or(0);
        let dur = item.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
        let span = item.get("span").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"cat\":\"blot\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"trace\":\"{trace}\",\"span\":\"{span}\"}}}}"
        ));
    }
    out.push(']');
    Ok(out)
}

/// Renders the server's span-JSON array as a per-trace text listing.
fn trace_json_to_text(doc: &Json) -> String {
    let items = doc.as_array().unwrap_or(&[]);
    if items.is_empty() {
        return "(no spans recorded)".to_owned();
    }
    let trace_of = |item: &Json| -> String {
        item.get("trace")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let mut traces: Vec<String> = Vec::new();
    for item in items {
        let t = trace_of(item);
        if !traces.contains(&t) {
            traces.push(t);
        }
    }
    let mut out = String::new();
    for t in traces {
        out.push_str(&format!("trace {t}:\n"));
        for item in items.iter().filter(|i| trace_of(i) == t) {
            let name = item.get("name").and_then(Json::as_str).unwrap_or("?");
            let dur_ms = item.get("dur_us").and_then(Json::as_f64).unwrap_or(0.0) / 1e3;
            out.push_str(&format!("  {name:<16} {dur_ms:>9.3} ms"));
            if let Some(Json::Obj(notes)) = item.get("notes") {
                for (k, v) in notes {
                    out.push_str(&format!("  {k}={v}"));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// `blot trace`: dump a flight-recorder span tree. Remotely it fetches
/// the serving store's recorder over the wire; locally it replays a
/// deterministic probe workload with tracing on and dumps the spans it
/// produced. `--slow MS` keeps only traces with a span at least that
/// slow, `--last N` the N most recent traces; `--json` emits the raw
/// span array, `--chrome` Chrome `trace_event` JSON for
/// `chrome://tracing` / Perfetto.
fn cmd_trace(args: &Args) -> Result<(), String> {
    let slow_ms = args.get_parsed::<f64>("slow")?.unwrap_or(0.0);
    let last = args.get_parsed::<u32>("last")?.unwrap_or(0);
    if let Some(addr) = args.get("remote") {
        let mut client =
            blot_server::Client::connect(addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;
        let json = client.trace(slow_ms, last).map_err(|e| e.to_string())?;
        if args.has("chrome") {
            let doc =
                Json::parse(&json).map_err(|e| format!("server sent invalid trace JSON: {e}"))?;
            pipe_println(&trace_json_to_chrome(&doc)?);
        } else if args.has("json") {
            pipe_println(&json);
        } else {
            let doc =
                Json::parse(&json).map_err(|e| format!("server sent invalid trace JSON: {e}"))?;
            pipe_println(trace_json_to_text(&doc).trim_end());
        }
        return Ok(());
    }
    let store = open_store(args)?;
    if !blot_obs::enabled() {
        return Err("tracing is compiled out (blot-obs `off` feature)".into());
    }
    if let Some(ms) = args.get_parsed::<f64>("slow-log")? {
        store.set_slow_query_ms(ms);
    }
    let rounds = args.get_parsed::<u32>("queries")?.unwrap_or(8);
    let u = store.universe();
    for k in 0..rounds {
        let f = 2.0 + f64::from(k);
        let q = Cuboid::from_centroid(
            u.centroid(),
            QuerySize::new(u.extent(0) / f, u.extent(1) / f, u.extent(2) / f),
        );
        store
            .query_traced(&q, None)
            .map_err(|e| format!("probe query failed: {e}"))?;
    }
    for entry in store.drain_slow_queries() {
        eprintln!("{}", entry.to_line());
    }
    let records = store.recorder().snapshot();
    let records = blot_obs::trace::filter_slow(&records, slow_ms);
    let records =
        blot_obs::trace::filter_last(&records, usize::try_from(last).unwrap_or(usize::MAX));
    let rendered = if args.has("chrome") {
        blot_obs::trace::records_to_chrome(&records)
    } else if args.has("json") {
        blot_obs::trace::records_to_json(&records)
    } else {
        blot_obs::trace::records_to_text(&records)
    };
    pipe_println(rendered.trim_end());
    Ok(())
}

/// `blot serve`: run the TCP serving layer over a store directory.
///
/// The workspace forbids `unsafe`, so there is no SIGTERM handler;
/// shutdown is cooperative — EOF or a `quit`/`stop` line on stdin trips
/// the latch, then the server drains in-flight requests and exits 0.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let store = open_store(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7407");
    let mut config = blot_server::ServerConfig::default();
    if let Some(n) = args.get_parsed::<usize>("max-conns")? {
        config.max_conns = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("queue-depth")? {
        config.queue_depth = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("handlers")? {
        config.handlers = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("max-batch")? {
        config.max_batch = n.max(1);
    }
    if let Some(ms) = args.get_parsed::<f64>("slow-log")? {
        config.slow_query_ms = ms.max(0.0);
    }
    let server = blot_server::Server::start(std::sync::Arc::new(store), addr, config)
        .map_err(|e| e.to_string())?;
    serve_until_quit(server, "serving")
}

/// Shared serve loop: announce, watch stdin for `quit`/`stop`/EOF,
/// drain on shutdown, report. Used by `serve` and `route serve`.
fn serve_until_quit(server: blot_server::Server, what: &str) -> Result<(), String> {
    pipe_println(&format!(
        "{what} on {} — EOF or `quit` on stdin shuts down",
        server.local_addr()
    ));
    let flag = server.shutdown_flag();
    {
        let flag = flag.clone();
        // Watcher thread: lives for the process; detached on exit.
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let word = line.trim();
                        if word.eq_ignore_ascii_case("quit") || word.eq_ignore_ascii_case("stop") {
                            break;
                        }
                    }
                }
            }
            flag.trigger();
        });
    }
    flag.wait();
    pipe_println("shutting down — draining in-flight requests");
    let report = server.shutdown(std::time::Duration::from_secs(30));
    let served = report.snapshot.counter("server.requests").unwrap_or(0);
    let shed = report.snapshot.counter("server.shed").unwrap_or(0);
    pipe_println(&format!(
        "drained (threads joined: {}, scan pool drained: {}) — {served} requests served, {shed} shed",
        report.threads_joined, report.pool_drained
    ));
    Ok(())
}

/// `blot route serve`: run a scatter-gather coordinator over N running
/// `blot serve` shards, itself fronted by the same TCP serving layer —
/// so `blot query --coordinator ADDR` is the ordinary remote client.
fn cmd_route_serve(args: &Args) -> Result<(), String> {
    use blot_router::{RouterConfig, RouterService, ShardMap, ShardSpec};
    let shards: Vec<String> = args
        .get_all("shard")
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    if shards.is_empty() {
        return Err("at least one --shard ADDR is required".into());
    }
    let version = args.get_parsed::<u64>("map-version")?.unwrap_or(1);
    let spec = if let Some(cuts) = args.get("cuts") {
        let axis = match args.get("axis").unwrap_or("t") {
            "x" => 0,
            "y" => 1,
            "t" => 2,
            other => return Err(format!("unknown --axis `{other}` (expected x|y|t)")),
        };
        let cuts: Vec<f64> = cuts
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| format!("bad number `{p}` in --cuts"))
            })
            .collect::<Result<_, _>>()?;
        ShardSpec::AxisCuts { axis, cuts }
    } else {
        ShardSpec::OidHash {
            shards: u32::try_from(shards.len()).map_err(|_| "too many shards".to_owned())?,
        }
    };
    let map = ShardMap::new(version, spec, shards).map_err(|e| e.to_string())?;
    let mut router_config = RouterConfig::default();
    if let Some(n) = args.get_parsed::<usize>("conns-per-shard")? {
        router_config.pool.conns_per_shard = n.max(1);
    }
    if let Some(n) = args.get_parsed::<u32>("shard-retries")? {
        router_config.pool.shard_retries = n;
    }
    let n_shards = map.len();
    let service = RouterService::new(map, router_config).map_err(|e| e.to_string())?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7500");
    let mut config = blot_server::ServerConfig::default();
    if let Some(n) = args.get_parsed::<usize>("max-conns")? {
        config.max_conns = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("queue-depth")? {
        config.queue_depth = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("handlers")? {
        config.handlers = n.max(1);
    }
    let server = blot_server::Server::start(std::sync::Arc::new(service), addr, config)
        .map_err(|e| e.to_string())?;
    serve_until_quit(server, &format!("coordinating {n_shards} shard(s)"))
}
