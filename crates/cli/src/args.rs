//! Minimal `--flag value` / `--flag` argument parsing (no external
//! dependencies; the option set is small and fixed).

use std::collections::BTreeMap;

/// Parsed command-line options: repeated flags accumulate.
pub struct Args {
    values: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--switch` flags.
    ///
    /// # Errors
    ///
    /// Returns a message when a positional (non-`--`) argument is
    /// encountered; the CLI takes flags only.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            match it.next_if(|next| !next.starts_with("--")) {
                Some(v) => values.entry(key.to_owned()).or_default().push(v.clone()),
                None => switches.push(key.to_owned()),
            }
        }
        Ok(Self { values, switches })
    }

    /// Last value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable `--key`.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.values
            .get(key)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Whether the bare switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Required `--key value`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when `--key` was not given.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Optional `--key value` parsed as `T`.
    ///
    /// # Errors
    ///
    /// Returns a message when the flag is present but its value does
    /// not parse as `T`.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("bad value `{v}` for --{key}"))
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    #[test]
    fn parses_values_switches_and_repeats() {
        let a = Args::parse(&argv(&[
            "--data",
            "x.csv",
            "--replica",
            "A",
            "--replica",
            "B",
            "--exact",
        ]))
        .unwrap();
        assert_eq!(a.get("data"), Some("x.csv"));
        assert_eq!(a.get_all("replica"), vec!["A", "B"]);
        assert!(a.has("exact"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_parsed::<u32>("taxis").unwrap(), None);
    }

    #[test]
    fn rejects_positional_and_bad_numbers() {
        assert!(Args::parse(&argv(&["stray"])).is_err());
        let a = Args::parse(&argv(&["--taxis", "abc"])).unwrap();
        assert!(a.get_parsed::<u32>("taxis").is_err());
    }

    #[test]
    fn require_reports_missing_flags() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(a.require("store").unwrap_err().contains("--store"));
    }
}
