//! The store manifest: everything needed to reopen a store directory
//! without the original dataset.

use blot_core::prelude::*;
use blot_core::store::BlotStore;
use blot_geo::Cuboid;
use blot_index::PartitioningScheme;
use blot_json::{FromJson, Json, JsonError, ToJson};
use blot_storage::{Backend, FileBackend};
use std::path::Path;

/// One replica's persisted metadata.
struct ReplicaEntry {
    config: ReplicaConfig,
    scheme: PartitioningScheme,
    records: u64,
    bytes: u64,
}

impl ToJson for ReplicaEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            // `ReplicaConfig` has a lossless Display/FromStr pair
            // (`S16xT8/ROW-LZF`); persist that form.
            ("config", Json::Str(self.config.to_string())),
            ("scheme", self.scheme.to_json()),
            ("records", self.records.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for ReplicaEntry {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let config: ReplicaConfig = value
            .field("config")?
            .as_str()
            .ok_or_else(|| JsonError::shape("replica config must be a string"))?
            .parse()
            .map_err(JsonError::shape)?;
        let scheme = PartitioningScheme::from_json(value.field("scheme")?)?;
        if scheme.spec() != config.spec {
            return Err(JsonError::shape(format!(
                "scheme shape {} does not match replica config {}",
                scheme.spec(),
                config
            )));
        }
        Ok(Self {
            config,
            scheme,
            records: u64::from_json(value.field("records")?)?,
            bytes: u64::from_json(value.field("bytes")?)?,
        })
    }
}

/// `manifest.json`: universe + replica metadata (schemes included, so
/// reopening needs no data and no rebuild).
pub struct Manifest {
    universe: Cuboid,
    replicas: Vec<ReplicaEntry>,
}

impl ToJson for Manifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("universe", self.universe.to_json()),
            ("replicas", self.replicas.to_json()),
        ])
    }
}

impl FromJson for Manifest {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            universe: Cuboid::from_json(value.field("universe")?)?,
            replicas: Vec::<ReplicaEntry>::from_json(value.field("replicas")?)?,
        })
    }
}

impl Manifest {
    /// Captures a store's metadata.
    pub fn from_store<B: Backend + 'static>(store: &BlotStore<B>) -> Self {
        Self {
            universe: store.universe(),
            replicas: store
                .replicas()
                .iter()
                .map(|r| ReplicaEntry {
                    config: r.config,
                    scheme: r.scheme.clone(),
                    records: r.records,
                    bytes: r.bytes,
                })
                .collect(),
        }
    }

    /// Writes `manifest.json` into the store directory.
    ///
    /// # Errors
    ///
    /// Returns a message if the file cannot be written.
    pub fn save(&self, dir: &str) -> Result<(), String> {
        let json = self.to_json().pretty();
        std::fs::write(Path::new(dir).join("manifest.json"), json)
            .map_err(|e| format!("cannot write manifest: {e}"))
    }

    /// Reads `manifest.json` from a store directory.
    ///
    /// # Errors
    ///
    /// Returns a message if the file is unreadable, not valid JSON, or
    /// not a structurally valid manifest.
    pub fn load(dir: &str) -> Result<Self, String> {
        let path = Path::new(dir).join("manifest.json");
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let tree = Json::parse(&json).map_err(|e| format!("corrupt manifest: {e}"))?;
        Self::from_json(&tree).map_err(|e| format!("corrupt manifest: {e}"))
    }

    /// Opens the store: attaches the file backend and restores every
    /// replica's metadata.
    ///
    /// The cost model for query routing is reconstructed from a small
    /// sample read back out of the first replica's units (the store
    /// carries no raw data); if that fails, a flat default model is used
    /// — routing degrades gracefully to partition-count ranking.
    ///
    /// # Errors
    ///
    /// Returns a message when the file backend cannot attach to `dir`
    /// or a replica's metadata cannot be restored.
    pub fn open(self, dir: &str, env: EnvProfile) -> Result<BlotStore<FileBackend>, String> {
        let backend = FileBackend::new(dir).map_err(|e| e.to_string())?;
        // Rebuild a routing model from one storage unit's records.
        let sample = self
            .replicas
            .first()
            .and_then(|r| {
                let key = blot_storage::UnitKey {
                    replica: 0,
                    partition: 0,
                };
                let bytes = backend.get(key).ok()?;
                r.config.encoding.decode(&bytes).ok()
            })
            .filter(|b| !b.is_empty());
        let model = match sample {
            Some(batch) => CostModel::calibrate(&env, &batch, 0xB107),
            None => flat_model(),
        };
        let mut store = BlotStore::new(backend, env, self.universe, model);
        for r in self.replicas {
            store
                .restore_replica(r.config, r.scheme, r.records, r.bytes)
                .map_err(|e| e.to_string())?;
        }
        Ok(store)
    }
}

/// A neutral model (equal per-record cost for every scheme) used when no
/// sample is available for calibration.
fn flat_model() -> CostModel {
    let params = blot_codec::SchemeTable::build(|_| blot_core::cost::CostParams {
        ms_per_record: blot_core::units::Millis::new(1e-3),
        extra_ms: blot_core::units::Millis::new(100.0),
    });
    let bpr = blot_codec::SchemeTable::build(|_| 38.0);
    CostModel::from_params("flat", params, bpr)
}
