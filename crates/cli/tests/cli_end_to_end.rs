//! End-to-end exercise of the `blot` binary: generate → build → info →
//! query → scrub → (damage) → repair.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use std::path::PathBuf;
use std::process::Command;

struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(label: &str) -> Self {
        let root = std::env::temp_dir().join(format!("blot-cli-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn path(&self, name: &str) -> String {
        self.root.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn blot(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_blot"))
        .args(args)
        .output()
        .expect("run blot binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn full_cli_lifecycle() {
    let dirs = Dirs::new("lifecycle");
    let data = dirs.path("fleet.csv");
    let store = dirs.path("store");

    // generate
    let (ok, out) = blot(&[
        "generate",
        "--out",
        &data,
        "--taxis",
        "40",
        "--records",
        "100",
        "--seed",
        "9",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("4000 records"), "{out}");

    // build two diverse replicas
    let (ok, out) = blot(&[
        "build",
        "--data",
        &data,
        "--store",
        &store,
        "--replica",
        "S16xT4/ROW-SNAPPY",
        "--replica",
        "S4xT2/COL-GZIP",
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("built replica 0") && out.contains("built replica 1"),
        "{out}"
    );
    assert!(std::path::Path::new(&store).join("manifest.json").exists());

    // info reopens from the manifest
    let (ok, out) = blot(&["info", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("replica 0: S16xT4/ROW-SNAPPY"), "{out}");
    assert!(out.contains("replica 1: S4xT2/COL-GZIP"), "{out}");

    // query the whole universe: every record comes back
    let (ok, out) = blot(&[
        "query",
        "--store",
        &store,
        "--center",
        "121,31,4000",
        "--size",
        "10,10,1000000",
        "--limit",
        "2",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("4000 records"), "{out}");

    // clean scrub
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("healthy"), "{out}");

    // destroy a unit on disk, scrub sees it, repair heals it
    std::fs::remove_file(std::path::Path::new(&store).join("r0").join("p3.unit")).unwrap();
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("r0/p3"), "{out}");
    let (ok, out) = blot(&["repair", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("repaired 1 units"), "{out}");
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("healthy"), "{out}");
}

#[test]
fn stats_reports_metrics_and_drift() {
    let dirs = Dirs::new("stats");
    let data = dirs.path("fleet.csv");
    let store = dirs.path("store");
    let (ok, out) = blot(&[
        "generate",
        "--out",
        &data,
        "--taxis",
        "40",
        "--records",
        "100",
        "--seed",
        "11",
    ]);
    assert!(ok, "{out}");
    let (ok, out) = blot(&[
        "build",
        "--data",
        &data,
        "--store",
        &store,
        "--replica",
        "S16xT4/ROW-SNAPPY",
        "--replica",
        "S4xT2/COL-GZIP",
    ]);
    assert!(ok, "{out}");

    // Text mode: metric table plus the drift section.
    let (ok, out) = blot(&["stats", "--store", &store, "--queries", "10"]);
    assert!(ok, "{out}");
    assert!(out.contains("store.queries"), "{out}");
    assert!(out.contains("cost-model drift"), "{out}");

    // JSON mode: parse and assert the probe workload left non-zero
    // query / scan / pool metrics and a per-scheme drift section.
    let (ok, out) = blot(&["stats", "--store", &store, "--queries", "10", "--json"]);
    assert!(ok, "{out}");
    let doc = blot_json::Json::parse(out.trim()).expect("stats --json emits valid JSON");
    assert_eq!(doc.field("enabled").unwrap().as_bool(), Some(true));
    let counters = doc.field("metrics").unwrap().field("counters").unwrap();
    let counter = |name: &str| counters.get(name).and_then(blot_json::Json::as_u64);
    assert_eq!(counter("store.queries"), Some(10), "{out}");
    assert!(counter("store.units_scanned").unwrap() > 0, "{out}");
    assert!(counter("store.records_decoded").unwrap() > 0, "{out}");
    let pool_tasks =
        counter("pool.tasks_inline").unwrap_or(0) + counter("pool.tasks_pooled").unwrap_or(0);
    assert!(pool_tasks > 0, "executor pool saw no tasks: {out}");
    let drift = doc.field("drift").unwrap();
    let schemes = drift.field("schemes").unwrap().as_array().unwrap();
    assert_eq!(schemes.len(), 8, "one drift row per grid scheme");
    let sampled: Vec<&str> = schemes
        .iter()
        .filter(|s| s.field("samples").unwrap().as_u64().unwrap() > 0)
        .map(|s| s.field("scheme").unwrap().as_str().unwrap())
        .collect();
    assert!(
        !sampled.is_empty(),
        "probe queries must leave drift samples"
    );
    for s in &sampled {
        assert!(
            *s == "row-lzf" || *s == "col-deflate",
            "unexpected sampled scheme {s}: {out}"
        );
    }
}

#[test]
fn select_prints_a_recommendation() {
    let dirs = Dirs::new("select");
    let data = dirs.path("fleet.csv");
    let (ok, out) = blot(&[
        "generate",
        "--out",
        &data,
        "--taxis",
        "30",
        "--records",
        "80",
        "--seed",
        "3",
    ]);
    assert!(ok, "{out}");
    let (ok, out) = blot(&[
        "select",
        "--data",
        &data,
        "--budget-copies",
        "3",
        "--records",
        "65000000",
        "--env",
        "cloud",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("selected"), "{out}");
    assert!(out.contains("GiB"), "{out}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, out) = blot(&["query", "--store", "/nonexistent"]);
    assert!(!ok);
    assert!(out.contains("error"), "{out}");
    let (ok, out) = blot(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"), "{out}");
    let (ok, out) = blot(&["build", "--data", "x.csv"]);
    assert!(!ok);
    assert!(out.contains("--store") || out.contains("error"), "{out}");
}
