//! End-to-end exercise of the `blot` binary: generate → build → info →
//! query → scrub → (damage) → repair.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use std::path::PathBuf;
use std::process::Command;

struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!("blot-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn path(&self, name: &str) -> String {
        self.root.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn blot(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_blot"))
        .args(args)
        .output()
        .expect("run blot binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn full_cli_lifecycle() {
    let dirs = Dirs::new();
    let data = dirs.path("fleet.csv");
    let store = dirs.path("store");

    // generate
    let (ok, out) = blot(&[
        "generate",
        "--out",
        &data,
        "--taxis",
        "40",
        "--records",
        "100",
        "--seed",
        "9",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("4000 records"), "{out}");

    // build two diverse replicas
    let (ok, out) = blot(&[
        "build",
        "--data",
        &data,
        "--store",
        &store,
        "--replica",
        "S16xT4/ROW-SNAPPY",
        "--replica",
        "S4xT2/COL-GZIP",
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("built replica 0") && out.contains("built replica 1"),
        "{out}"
    );
    assert!(std::path::Path::new(&store).join("manifest.json").exists());

    // info reopens from the manifest
    let (ok, out) = blot(&["info", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("replica 0: S16xT4/ROW-SNAPPY"), "{out}");
    assert!(out.contains("replica 1: S4xT2/COL-GZIP"), "{out}");

    // query the whole universe: every record comes back
    let (ok, out) = blot(&[
        "query",
        "--store",
        &store,
        "--center",
        "121,31,4000",
        "--size",
        "10,10,1000000",
        "--limit",
        "2",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("4000 records"), "{out}");

    // clean scrub
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("healthy"), "{out}");

    // destroy a unit on disk, scrub sees it, repair heals it
    std::fs::remove_file(std::path::Path::new(&store).join("r0").join("p3.unit")).unwrap();
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("r0/p3"), "{out}");
    let (ok, out) = blot(&["repair", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("repaired 1 units"), "{out}");
    let (ok, out) = blot(&["scrub", "--store", &store]);
    assert!(ok, "{out}");
    assert!(out.contains("healthy"), "{out}");
}

#[test]
fn select_prints_a_recommendation() {
    let dirs = Dirs::new();
    let data = dirs.path("fleet.csv");
    let (ok, out) = blot(&[
        "generate",
        "--out",
        &data,
        "--taxis",
        "30",
        "--records",
        "80",
        "--seed",
        "3",
    ]);
    assert!(ok, "{out}");
    let (ok, out) = blot(&[
        "select",
        "--data",
        &data,
        "--budget-copies",
        "3",
        "--records",
        "65000000",
        "--env",
        "cloud",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("selected"), "{out}");
    assert!(out.contains("GiB"), "{out}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, out) = blot(&["query", "--store", "/nonexistent"]);
    assert!(!ok);
    assert!(out.contains("error"), "{out}");
    let (ok, out) = blot(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"), "{out}");
    let (ok, out) = blot(&["build", "--data", "x.csv"]);
    assert!(!ok);
    assert!(out.contains("--store") || out.contains("error"), "{out}");
}
