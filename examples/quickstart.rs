//! Quickstart: build a BLOT store with two diverse replicas and run a
//! few range queries against it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Example code favours directness: `expect` on infallible-by-construction
// setup keeps the walkthrough readable.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::storage::MemBackend;
use blot::tracegen::FleetConfig;

fn main() {
    // 1. A synthetic taxi fleet (deterministic — same output every run).
    let fleet = FleetConfig::small();
    let data = fleet.generate();
    let universe = fleet.universe();
    println!(
        "generated {} records from {} taxis over {:.1} days",
        data.len(),
        fleet.num_taxis,
        universe.extent(2) / 86_400.0
    );

    // 2. Calibrate the cost model in the simulated local cluster: this
    //    measures ScanRate / ExtraTime per encoding scheme (§V-B).
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 42);
    for scheme in EncodingScheme::all() {
        let p = model.params(scheme);
        println!(
            "  {scheme:<12} ratio {:.3}  1/ScanRate {:.4} ms/rec  ExtraTime {:>8.1} ms",
            model.compression_ratio(scheme),
            p.ms_per_record,
            p.extra_ms
        );
    }

    // 3. Build two diverse replicas: fine partitions + fast codec for
    //    point-ish queries, coarse partitions + strong codec for sweeps.
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    let fine = store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(64, 8),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .expect("build fine replica");
    let coarse = store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Lzr),
            ),
        )
        .expect("build coarse replica");
    println!(
        "built replica {fine} ({} units, {:.1} KiB) and replica {coarse} ({} units, {:.1} KiB)",
        store.replicas()[fine as usize].scheme.len(),
        store.replicas()[fine as usize].bytes as f64 / 1024.0,
        store.replicas()[coarse as usize].scheme.len(),
        store.replicas()[coarse as usize].bytes as f64 / 1024.0,
    );

    // 4. Queries of different shapes route to different replicas.
    let hot = fleet.hotspots()[0];
    let downtown = Point::new(hot.0, hot.1, universe.centroid().t);
    let queries = [
        (
            "downtown, 1 hour",
            Cuboid::from_centroid(downtown, QuerySize::new(0.1, 0.1, 3_600.0)),
        ),
        (
            "city, half the span",
            Cuboid::from_centroid(
                universe.centroid(),
                QuerySize::new(0.8, 0.8, universe.extent(2) / 2.0),
            ),
        ),
        ("everything", universe),
    ];
    for (name, q) in queries {
        let result = store.query(&q).expect("query");
        println!(
            "query [{name}]: {} records from replica {} — {} partitions, {:.0} ms simulated ({:.0} ms wall)",
            result.records.len(),
            result.replica,
            result.partitions_scanned,
            result.sim_ms,
            result.makespan_ms,
        );
    }
}
