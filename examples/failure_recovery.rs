//! Failure recovery: diverse replicas recovering each other (§II-E).
//!
//! Exact replicas survive failures byte-for-byte; diverse replicas
//! survive them *logically* — any replica can be rebuilt from the
//! others because all of them encode the same records. This example
//! walks three escalating incidents over a three-replica store:
//!
//! 1. a batch of storage units vanishes → queries fail over;
//! 2. the scrubber finds the damage → units are rebuilt from an intact
//!    replica;
//! 3. *every* replica loses a unit over the same region → the damaged
//!    unit is merged back from two partially-readable replicas at once.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

// Example code favours directness: `expect` on infallible-by-construction
// setup keeps the walkthrough readable.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::storage::{FailingBackend, FailureMode, MemBackend, UnitKey};
use blot::tracegen::FleetConfig;

fn main() {
    let fleet = FleetConfig::small();
    let data = fleet.generate();
    let universe = fleet.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 5);
    let mut store = BlotStore::new(FailingBackend::new(MemBackend::new()), env, universe, model);

    let configs = [
        ReplicaConfig::new(
            SchemeSpec::new(16, 8),
            EncodingScheme::new(Layout::Row, Compression::Lzf),
        ),
        ReplicaConfig::new(
            SchemeSpec::new(4, 4),
            EncodingScheme::new(Layout::Column, Compression::Lzr),
        ),
        ReplicaConfig::new(
            SchemeSpec::new(64, 2),
            EncodingScheme::new(Layout::Row, Compression::Deflate),
        ),
    ];
    for config in configs {
        store.build_replica(&data, config).expect("build replica");
    }
    println!("three diverse replicas:");
    for r in store.replicas() {
        println!(
            "  replica {} = {:<22} {} units, {:.0} KiB",
            r.id,
            r.config.to_string(),
            r.scheme.len(),
            r.bytes as f64 / 1024.0
        );
    }

    // ---- Incident 1: the replica the router prefers loses units. ----
    let q = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(
            universe.extent(0) / 2.0,
            universe.extent(1) / 2.0,
            universe.extent(2) / 2.0,
        ),
    );
    let preferred = store.route(&q)[0];
    for pid in 0..4 {
        store.backend().inject(
            UnitKey {
                replica: preferred,
                partition: pid,
            },
            FailureMode::Drop,
        );
    }
    let result = store.query(&q).expect("degraded query");
    println!(
        "\nincident 1: replica {preferred} lost 4 units — query failed over {:?} and was served by replica {} ({} records, all correct: {})",
        result.failed_over,
        result.replica,
        result.records.len(),
        result.records.len() == data.count_in_range(&q)
    );
    assert!(result.failed_over.contains(&preferred));
    assert_eq!(result.records.len(), data.count_in_range(&q));

    // ---- Incident 2: scrub + repair from the intact replicas. ----
    let damaged = store.scrub().expect("scrub");
    let report = store.repair_all().expect("repair");
    println!(
        "incident 2: scrub found {} damaged units, repair rebuilt {} (unrecoverable: {})",
        damaged.len(),
        report.repaired.len(),
        report.unrecoverable.len()
    );
    assert!(report.unrecoverable.is_empty());
    assert!(store.scrub().expect("scrub").is_empty());

    // ---- Incident 3: every replica is damaged over one region. ----
    // Pick a unit u of replica 0 plus one unit of replica 1 and one of
    // replica 2 that intersect u's range while being disjoint from each
    // other: no region loses all copies, yet no single replica is
    // intact over u — only a multi-source merge can rebuild it.
    let r0 = &store.replicas()[0];
    let r1 = &store.replicas()[1];
    let r2 = &store.replicas()[2];
    let mut triple = None;
    'search: for u in r0.scheme.partitions() {
        for &v in &r1.scheme.involved(&u.range) {
            for &w in &r2.scheme.involved(&u.range) {
                let v_range = r1.scheme.partitions()[v].range;
                let w_range = r2.scheme.partitions()[w].range;
                if !v_range.intersects(&w_range) && u.count > 0 {
                    triple = Some((u.id, v, w));
                    break 'search;
                }
            }
        }
    }
    let Some((u, v, w)) = triple else {
        println!("incident 3 skipped: no disjoint unit triple in this layout");
        return;
    };
    store.backend().inject(
        UnitKey {
            replica: 0,
            partition: u32::try_from(u).unwrap_or(u32::MAX),
        },
        FailureMode::Drop,
    );
    store.backend().inject(
        UnitKey {
            replica: 1,
            partition: u32::try_from(v).unwrap_or(u32::MAX),
        },
        FailureMode::Corrupt,
    );
    store.backend().inject(
        UnitKey {
            replica: 2,
            partition: u32::try_from(w).unwrap_or(u32::MAX),
        },
        FailureMode::Drop,
    );
    let report = store.repair_all().expect("repair");
    println!(
        "incident 3: r0/p{u}, r1/p{v}, r2/p{w} all lost over one region — repair rebuilt {} units, unrecoverable: {}",
        report.repaired.len(),
        report.unrecoverable.len()
    );
    assert_eq!(report.repaired.len(), 3);
    assert!(report.unrecoverable.is_empty());
    assert!(store.scrub().expect("scrub").is_empty());

    for id in 0..3 {
        let n = store
            .query_on(id, &universe)
            .expect("post-repair query")
            .records
            .len();
        assert_eq!(n, data.len());
    }
    println!(
        "store fully healed — all three replicas serve all {} records again",
        data.len()
    );
}
