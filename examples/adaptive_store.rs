//! Adaptive store: live ingest, query logging, and nightly
//! re-selection — the §II-E loop running end to end.
//!
//! A store is provisioned with a guess (one coarse replica), serves a
//! workload that turns out to be dominated by small queries while new
//! GPS fixes stream in, then lets the advisor re-select the replica set
//! from its own query log.
//!
//! ```sh
//! cargo run --release --example adaptive_store
//! ```

// Example code favours directness: `expect` on infallible-by-construction
// setup keeps the walkthrough readable.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::adapt::{recommend, Strategy};
use blot::core::prelude::*;
use blot::storage::MemBackend;
use blot::tracegen::FleetConfig;

fn main() {
    let fleet = FleetConfig::small();
    let data = fleet.generate();
    let universe = fleet.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xADA);

    // Day 0: ops guesses a single coarse replica.
    let initial = ReplicaConfig::new(
        SchemeSpec::new(4, 2),
        EncodingScheme::new(Layout::Row, Compression::Plain),
    );
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model.clone());
    store.enable_query_log(10_000);
    store
        .build_replica(&data, initial)
        .expect("initial replica");
    println!(
        "day 0: built {initial} ({:.1} KiB)",
        store.total_bytes() as f64 / 1024.0
    );

    // Daytime traffic: analysts hammer small cell/hour statistics, a few
    // big sweeps, while new fixes arrive from the fleet.
    let hot = fleet.hotspots()[0];
    let mut served = 0usize;
    for i in 0..300 {
        let f = 0.03 + 0.002 * f64::from(i % 10);
        let centre = Point::new(
            hot.0 + 0.01 * f64::from(i % 7) - 0.03,
            hot.1 + 0.01 * f64::from(i % 5) - 0.02,
            universe.min().t + universe.extent(2) * (0.1 + 0.8 * f64::from(i % 9) / 9.0),
        );
        let q = Cuboid::from_centroid(centre, QuerySize::new(f, f, universe.extent(2) / 40.0));
        served += store.query(&q).expect("query").records.len();
    }
    for _ in 0..3 {
        served += store.query(&universe).expect("sweep").records.len();
    }
    // New fixes from 20 fresh vehicles.
    let mut grown = fleet.clone();
    grown.num_taxis += 20;
    let incoming: RecordBatch = (fleet.num_taxis..grown.num_taxis)
        .flat_map(|taxi| grown.taxi_trace(taxi))
        .collect();
    let ingest = store.ingest(&incoming).expect("ingest");
    println!(
        "daytime: served {} records over {} queries, ingested {} new fixes ({} units rewritten)",
        served,
        store.query_log().len(),
        ingest.records,
        ingest.units_rewritten
    );

    // Nightly job: compress the log into grouped queries and re-select.
    let log = store.query_log();
    let workload = log.derive_workload(4, 0xADA5EED);
    println!("nightly: query log → {} grouped queries", workload.len());
    let candidates = ReplicaConfig::grid(
        &[
            SchemeSpec::new(4, 2),
            SchemeSpec::new(16, 8),
            SchemeSpec::new(64, 16),
            SchemeSpec::new(256, 16),
        ],
        &EncodingScheme::all(),
    );
    let budget = Bytes::new(3.0 * 38.0 * 65e6); // three plain copies of a 65 M-record set
    let rec = recommend(
        &model,
        &workload,
        &candidates,
        &[initial],
        &data,
        universe,
        65e6,
        budget,
        Strategy::Exact,
    )
    .expect("recommend");
    println!(
        "advisor: cost {:.3e} → {:.3e} ms ({:.0}% better), build {:?}, drop {:?}",
        rec.current_cost,
        rec.recommended_cost,
        rec.improvement() * 100.0,
        rec.to_build
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        rec.to_drop
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
    );

    // Apply the migration.
    for config in &rec.to_build {
        store
            .build_replica(&data, *config)
            .expect("migration build");
    }
    // Re-run one of the daytime queries; the store now holds the
    // recommended set (the advisor's 87% figure is modelled at the full
    // 65 M-record production scale — at this demo's sample scale the
    // per-partition overhead still dominates routing).
    let q = Cuboid::from_centroid(
        Point::new(hot.0, hot.1, universe.min().t + universe.extent(2) * 0.1),
        QuerySize::new(0.1, 0.1, universe.extent(2) / 8.0),
    );
    let result = store.query(&q).expect("post-migration query");
    println!(
        "post-migration: hot query served by replica {} ({} records, {:.0} simulated ms)",
        result.replica,
        result.records.len(),
        result.sim_ms
    );
}
