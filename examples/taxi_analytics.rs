//! Taxi analytics: the mixed query workload that motivates diverse
//! replicas (§I of the paper).
//!
//! An urban-transport analyst runs two very different query classes over
//! the same fleet log:
//!
//! * **grid statistics** — hundreds of small cell × hour queries (pickup
//!   heatmaps, demand estimation);
//! * **corridor sweeps** — a few huge region × week queries (flow
//!   studies, planning).
//!
//! A store with one replica must compromise; with two diverse replicas
//! the router sends each class to the replica built for it.
//!
//! ```sh
//! cargo run --release --example taxi_analytics
//! ```

// Example code favours directness: `expect` on infallible-by-construction
// setup keeps the walkthrough readable.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::storage::MemBackend;
use blot::tracegen::FleetConfig;

struct ClassReport {
    records: usize,
    sim_ms: f64,
    fine_hits: usize,
    coarse_hits: usize,
}

fn run_class(store: &BlotStore<MemBackend>, queries: &[Cuboid], fine: u32) -> ClassReport {
    let mut report = ClassReport {
        records: 0,
        sim_ms: 0.0,
        fine_hits: 0,
        coarse_hits: 0,
    };
    for q in queries {
        let result = store.query(q).expect("query");
        report.records += result.records.len();
        report.sim_ms += result.sim_ms;
        if result.replica == fine {
            report.fine_hits += 1;
        } else {
            report.coarse_hits += 1;
        }
    }
    report
}

fn main() {
    let mut fleet = FleetConfig::small();
    fleet.num_taxis = 400;
    fleet.records_per_taxi = 300;
    let data = fleet.generate();
    let universe = fleet.universe();
    println!("fleet log: {} records", data.len());

    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 99);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    let fine = store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(256, 16),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .expect("fine replica");
    let coarse = store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 4),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .expect("coarse replica");

    // Grid statistics: a 6×6 spatial grid × 4 time-of-day windows over
    // the densest hotspot quarter of the city.
    let hot = fleet.hotspots()[0];
    let mut grid_queries = Vec::new();
    for ix in 0..6 {
        for iy in 0..6 {
            for it in 0..4 {
                let centre = Point::new(
                    hot.0 - 0.15 + 0.05 * f64::from(ix),
                    hot.1 - 0.15 + 0.05 * f64::from(iy),
                    universe.min().t + universe.extent(2) * (0.2 + 0.2 * f64::from(it)),
                );
                grid_queries.push(Cuboid::from_centroid(
                    centre,
                    QuerySize::new(0.05, 0.05, 3_600.0),
                ));
            }
        }
    }

    // Corridor sweeps: four region-scale, multi-day queries.
    let sweep_queries: Vec<Cuboid> = (0..4)
        .map(|i| {
            Cuboid::from_centroid(
                Point::new(
                    universe.centroid().x,
                    universe.centroid().y,
                    universe.min().t + universe.extent(2) * (0.2 + 0.2 * f64::from(i)),
                ),
                QuerySize::new(
                    universe.extent(0) * 0.7,
                    universe.extent(1) * 0.7,
                    universe.extent(2) * 0.3,
                ),
            )
        })
        .collect();

    let grid = run_class(&store, &grid_queries, fine);
    let sweep = run_class(&store, &sweep_queries, fine);
    println!(
        "grid statistics : {} queries, {} records, {:.0} ms simulated — routed fine/coarse = {}/{}",
        grid_queries.len(),
        grid.records,
        grid.sim_ms,
        grid.fine_hits,
        grid.coarse_hits
    );
    println!(
        "corridor sweeps : {} queries, {} records, {:.0} ms simulated — routed fine/coarse = {}/{}",
        sweep_queries.len(),
        sweep.records,
        sweep.sim_ms,
        sweep.fine_hits,
        sweep.coarse_hits
    );

    // What would each class have cost pinned to the "wrong" replica?
    let mut wrong = 0.0;
    for q in &grid_queries {
        wrong += store.query_on(coarse, q).expect("query").sim_ms;
    }
    println!(
        "grid statistics pinned to the coarse replica would cost {:.0} ms ({:.1}× routed)",
        wrong,
        wrong / grid.sim_ms
    );
    let mut wrong = 0.0;
    for q in &sweep_queries {
        wrong += store.query_on(fine, q).expect("query").sim_ms;
    }
    println!(
        "corridor sweeps pinned to the fine replica would cost {:.0} ms ({:.1}× routed)",
        wrong,
        wrong / sweep.sim_ms
    );
}
