//! Budget tuning: the full replica-selection pipeline of the paper.
//!
//! Calibrates the cost model, estimates the workload × candidate cost
//! matrix, and compares the Single / Greedy / MIP / Ideal strategies
//! across storage budgets — a miniature of Figure 4.
//!
//! ```sh
//! cargo run --release --example budget_tuning
//! ```

// Example code favours directness: `expect` on infallible-by-construction
// setup keeps the walkthrough readable.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::mip::MipSolver;
use blot::tracegen::FleetConfig;

fn main() {
    let fleet = FleetConfig::small();
    let sample = fleet.generate();
    let universe = fleet.universe();
    let env = EnvProfile::cloud_object_store();
    let model = CostModel::calibrate(&env, &sample, 7);

    // Candidates: a modest grid so the MIP solves in interactive time.
    let candidates = ReplicaConfig::grid(
        &[
            SchemeSpec::new(4, 2),
            SchemeSpec::new(4, 8),
            SchemeSpec::new(16, 4),
            SchemeSpec::new(64, 8),
            SchemeSpec::new(256, 16),
        ],
        &EncodingScheme::all(),
    );
    let workload = Workload::paper_synthetic(&universe);
    // Pretend the sample stands for the paper's 65M-record dataset.
    let matrix =
        CostMatrix::estimate_scaled(&model, &workload, &candidates, &sample, universe, 6.5e7);
    println!(
        "{} queries × {} candidate replicas",
        matrix.n_queries(),
        matrix.n_candidates()
    );

    let kept = prune_dominated(&matrix);
    println!(
        "dominance pruning: {} → {} candidates",
        matrix.n_candidates(),
        kept.len()
    );

    // The paper's reference budget: three exact copies of the optimal
    // single replica.
    let (single_idx, _) = matrix.optimal_single();
    let reference = 3.0 * matrix.storage[single_idx];
    let ideal = ideal_cost(&matrix);

    println!(
        "\n{:>8} | {:>12} {:>12} {:>12} {:>12}",
        "budget", "Single", "Greedy", "MIP", "Ideal"
    );
    for rel in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let budget = reference * rel;
        let single = select_single(&matrix, budget);
        let greedy = select_greedy(&matrix, budget);
        let mip = select_mip(&matrix, budget, &MipSolver::default()).expect("mip");
        println!(
            "{rel:>7.2}x | {:>12.0} {:>12.0} {:>12.0} {:>12.0}   (greedy ratio {:.3}, mip ratio {:.3})",
            single.workload_cost,
            greedy.workload_cost,
            mip.workload_cost,
            ideal,
            greedy.workload_cost / ideal,
            mip.workload_cost / ideal,
        );
    }

    let greedy = select_greedy(&matrix, reference);
    println!("\ngreedy selection at the reference budget:");
    for &j in &greedy.chosen {
        println!(
            "  {} — {:.1} MiB",
            candidates[j],
            matrix.storage[j] / (1024.0 * 1024.0)
        );
    }
}
