//! Durability integration: on-disk storage units, process-independent
//! recovery, and cross-replica repair through the file backend.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::storage::{Backend, FileBackend, UnitKey};
use blot::tracegen::FleetConfig;

fn fleet() -> FleetConfig {
    let mut c = FleetConfig::small();
    c.num_taxis = 60;
    c.records_per_taxi = 150;
    c
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("blot-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_on_files_answers_and_repairs() {
    let dir = temp_dir("repair");
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xF11E);
    let backend = FileBackend::new(&dir).expect("backend");
    let mut store = BlotStore::new(backend, env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Deflate),
            ),
        )
        .expect("replica 0");
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 4),
                EncodingScheme::new(Layout::Column, Compression::Lzf),
            ),
        )
        .expect("replica 1");

    // The units really are files on disk.
    let unit_files: Vec<_> = walk(&dir);
    assert_eq!(unit_files.len(), 64 + 16);

    // Physically destroy one unit of each replica behind the store's
    // back. The two units are chosen with disjoint ranges so each can
    // be rebuilt from the other replica (overlapping losses on *both*
    // replicas would be genuine data loss).
    let k1 = UnitKey {
        replica: 0,
        partition: 7,
    };
    let r0_range = store.replicas()[0].scheme.partitions()[7].range;
    let k2_pid = store.replicas()[1]
        .scheme
        .partitions()
        .iter()
        .find(|p| !p.range.intersects(&r0_range))
        .expect("some replica-1 unit is disjoint from r0/p7")
        .id;
    let k2 = UnitKey {
        replica: 1,
        partition: u32::try_from(k2_pid).unwrap_or(u32::MAX),
    };
    std::fs::remove_file(dir.join("r0").join("p7.unit")).expect("rm");
    // Truncate (torn write) instead of deleting.
    let p2 = dir.join("r1").join(format!("p{k2_pid}.unit"));
    let bytes = std::fs::read(&p2).expect("read");
    std::fs::write(&p2, &bytes[..bytes.len() / 3]).expect("truncate");

    let damaged = store.scrub().expect("scrub");
    let mut expect = vec![k1, k2];
    expect.sort_unstable();
    assert_eq!(damaged, expect);
    let report = store.repair_all().expect("repair");
    assert_eq!(report.repaired.len(), 2);
    assert!(report.unrecoverable.is_empty());
    assert!(store.scrub().expect("scrub").is_empty());

    // Every record still accounted for on both replicas.
    for id in 0..2 {
        assert_eq!(
            store.query_on(id, &universe).expect("query").records.len(),
            data.len()
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn units_survive_reopening_the_backend() {
    let dir = temp_dir("reopen");
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0x0F);

    let scheme_cfg = ReplicaConfig::new(
        SchemeSpec::new(4, 2),
        EncodingScheme::new(Layout::Row, Compression::Lzr),
    );
    {
        let backend = FileBackend::new(&dir).expect("backend");
        let mut store = BlotStore::new(backend, env, universe, model.clone());
        store.build_replica(&data, scheme_cfg).expect("build");
    } // store dropped — only the files remain

    // A new backend over the same directory sees the same units, and a
    // rebuilt store (schemes are deterministic) answers correctly.
    let backend = FileBackend::new(&dir).expect("reopen");
    assert_eq!(backend.list().len(), 8);
    let mut store = BlotStore::new(backend, env, universe, model);
    // Rebuilding the replica writes identical units over the old ones.
    store.build_replica(&data, scheme_cfg).expect("rebuild");
    let q = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(1.0, 1.0, universe.extent(2) / 2.0),
    );
    assert_eq!(
        store.query(&q).expect("query").records.len(),
        data.count_in_range(&q)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                out.extend(walk(&p));
            } else {
                out.push(p);
            }
        }
    }
    out
}
