//! End-to-end integration: generate → calibrate → estimate → select →
//! build → query, across every crate in the workspace.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot::core::prelude::*;
use blot::mip::MipSolver;
use blot::storage::MemBackend;
use blot::tracegen::FleetConfig;

fn fleet() -> FleetConfig {
    let mut c = FleetConfig::small();
    c.num_taxis = 100;
    c.records_per_taxi = 200;
    c
}

#[test]
fn full_pipeline_selects_builds_and_answers() {
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xE2E);

    // Selection over a small candidate grid.
    let candidates = ReplicaConfig::grid(&SchemeSpec::small_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&universe);
    let matrix = CostMatrix::estimate(&model, &workload, &candidates, &data, universe);

    let (single_idx, single_cost) = matrix.optimal_single();
    let budget = 3.0 * matrix.storage[single_idx];
    let greedy = select_greedy(&matrix, budget);
    let mip = select_mip(&matrix, budget, &MipSolver::default()).expect("mip");
    let ideal = ideal_cost(&matrix);

    // The paper's headline orderings.
    assert!(mip.workload_cost <= greedy.workload_cost + 1e-9);
    assert!(greedy.workload_cost <= single_cost + 1e-9);
    assert!(ideal <= mip.workload_cost + 1e-9);
    assert!(mip.storage <= budget + Bytes::new(1.0));
    assert!(greedy.storage <= budget + Bytes::new(1.0));
    assert!(
        greedy.chosen.len() > 1,
        "budget for 3 copies must buy diversity"
    );

    // Build the MIP-chosen replicas and answer concrete queries of every
    // workload group against the oracle.
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    for &j in &mip.chosen {
        store
            .build_replica(&data, candidates[j])
            .expect("build replica");
    }
    assert_eq!(store.replicas().len(), mip.chosen.len());
    for (gi, (q, _)) in workload.entries().iter().enumerate() {
        let range = q.at(&universe, 0.4, 0.6, 0.5);
        let result = store.query(&range).expect("query");
        let expected = data.count_in_range(&range);
        assert_eq!(result.records.len(), expected, "group {gi}");
        assert!(result.records.iter().all(|r| r.in_range(&range)));
    }
}

#[test]
fn dominance_pruning_preserves_the_optimum_end_to_end() {
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let model = CostModel::calibrate(&EnvProfile::cloud_object_store(), &data, 0xD0);
    let candidates = ReplicaConfig::grid(&SchemeSpec::small_grid(), &EncodingScheme::all());
    let workload = Workload::paper_synthetic(&universe);
    let matrix = CostMatrix::estimate(&model, &workload, &candidates, &data, universe);

    let kept = prune_dominated(&matrix);
    assert!(
        kept.len() < matrix.n_candidates(),
        "some candidates must be dominated"
    );

    let sub = CostMatrix {
        costs: matrix
            .costs
            .iter()
            .map(|row| kept.iter().map(|&j| row[j]).collect())
            .collect(),
        weights: matrix.weights.clone(),
        storage: kept.iter().map(|&j| matrix.storage[j]).collect(),
    };
    let budget = 3.0 * matrix.storage[matrix.optimal_single().0];
    let full = select_mip(&matrix, budget, &MipSolver::default()).expect("full mip");
    let pruned = select_mip(&sub, budget, &MipSolver::default()).expect("pruned mip");
    let rel = (full.workload_cost - pruned.workload_cost).abs() / full.workload_cost;
    assert!(
        rel < 1e-9,
        "pruning changed the optimum: {} vs {}",
        full.workload_cost,
        pruned.workload_cost
    );
}

#[test]
fn workload_grouping_compresses_query_logs() {
    // A "query log" of 500 concrete queries drawn from 3 latent shapes
    // compresses to 3 grouped queries whose weights recover the draw
    // frequencies.
    use blot::geo::QuerySize;
    let mut log = Vec::new();
    for i in 0..500 {
        let shape = match i % 10 {
            0..=5 => QuerySize::new(0.05, 0.05, 600.0),
            6..=8 => QuerySize::new(0.5, 0.4, 7_200.0),
            _ => QuerySize::new(1.8, 1.9, 80_000.0),
        };
        log.push(shape);
    }
    let grouped = blot::core::select::kmeans_group(&log, 3, 99);
    assert_eq!(grouped.len(), 3);
    let mut weights: Vec<f64> = grouped.entries().iter().map(|&(_, w)| w).collect();
    weights.sort_by(f64::total_cmp);
    assert_eq!(weights, vec![50.0, 150.0, 300.0]);
}

#[test]
fn estimated_costs_rank_replicas_like_measured_costs() {
    // The cost model only has to *rank* replicas correctly for routing
    // and selection to work (§II-E). Check rank agreement between
    // estimated and actually-simulated costs.
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0xACC);

    let configs = [
        ReplicaConfig::new(
            SchemeSpec::new(4, 2),
            EncodingScheme::new(Layout::Row, Compression::Plain),
        ),
        ReplicaConfig::new(
            SchemeSpec::new(16, 4),
            EncodingScheme::new(Layout::Row, Compression::Lzf),
        ),
        ReplicaConfig::new(
            SchemeSpec::new(64, 8),
            EncodingScheme::new(Layout::Column, Compression::Deflate),
        ),
    ];
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    for c in configs {
        store.build_replica(&data, c).expect("build");
    }

    let queries = [
        Cuboid::from_centroid(universe.centroid(), QuerySize::new(0.05, 0.05, 500.0)),
        Cuboid::from_centroid(
            universe.centroid(),
            QuerySize::new(0.8, 0.8, universe.extent(2) / 4.0),
        ),
        universe,
    ];
    let mut agreements = 0;
    for q in &queries {
        let predicted_best = store.route(q)[0];
        let mut measured: Vec<(u32, f64)> = (0..3)
            .map(|id| (id, store.query_on(id, q).expect("query").sim_ms))
            .collect();
        measured.sort_by(|a, b| a.1.total_cmp(&b.1));
        if measured[0].0 == predicted_best {
            agreements += 1;
        } else {
            // Allow near-ties: the predicted replica must be within 25%
            // of the measured best.
            let predicted_ms = store.query_on(predicted_best, q).expect("query").sim_ms;
            assert!(
                predicted_ms <= measured[0].1 * 1.25,
                "routing picked a replica {}% worse than best",
                (predicted_ms / measured[0].1 - 1.0) * 100.0
            );
        }
    }
    assert!(
        agreements >= 2,
        "routing should usually pick the measured-best replica"
    );
}
